#include "pruning/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>

#include "core/cpu.h"
#include "query/intra_query.h"
#include "query/thread_pool.h"

#if defined(__SSE2__) && !defined(EDR_DISABLE_SIMD)
#include <emmintrin.h>
#define EDR_HISTOGRAM_SIMD 1
#endif

#if defined(__x86_64__) && defined(__GNUC__) && !defined(EDR_DISABLE_SIMD)
#include <immintrin.h>
#define EDR_HISTOGRAM_AVX2 1
#endif

namespace edr {

namespace {

/// A small Dinic max-flow solver used to compute the maximal cancellation
/// between positive and negative histogram residuals. Graph sizes here are
/// tiny (hundreds of nodes), so simplicity beats asymptotic tuning.
class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes) : graph_(num_nodes) {}

  void AddEdge(int from, int to, int capacity) {
    graph_[from].push_back(
        {to, capacity, static_cast<int>(graph_[to].size())});
    graph_[to].push_back(
        {from, 0, static_cast<int>(graph_[from].size()) - 1});
  }

  int Compute(int source, int sink) {
    int flow = 0;
    while (Bfs(source, sink)) {
      iter_.assign(graph_.size(), 0);
      int pushed = 0;
      while ((pushed = Dfs(source, sink,
                           std::numeric_limits<int>::max())) > 0) {
        flow += pushed;
      }
    }
    return flow;
  }

 private:
  struct Edge {
    int to;
    int capacity;
    int reverse_index;
  };

  bool Bfs(int source, int sink) {
    level_.assign(graph_.size(), -1);
    std::queue<int> queue;
    level_[source] = 0;
    queue.push(source);
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop();
      for (const Edge& e : graph_[v]) {
        if (e.capacity > 0 && level_[e.to] < 0) {
          level_[e.to] = level_[v] + 1;
          queue.push(e.to);
        }
      }
    }
    return level_[sink] >= 0;
  }

  int Dfs(int v, int sink, int limit) {
    if (v == sink) return limit;
    for (size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
      Edge& e = graph_[v][i];
      if (e.capacity <= 0 || level_[e.to] != level_[v] + 1) continue;
      const int pushed = Dfs(e.to, sink, std::min(limit, e.capacity));
      if (pushed > 0) {
        e.capacity -= pushed;
        graph_[e.to][e.reverse_index].capacity += pushed;
        return pushed;
      }
    }
    return 0;
  }

  std::vector<std::vector<Edge>> graph_;
  std::vector<int> level_;
  std::vector<size_t> iter_;
};

struct OccupiedBin {
  int bin;
  int count;
};

/// Computes max(m, n) - T*, where T* is the maximum transport of mass from
/// HR bins to HS bins along approximately-matching (same or adjacent) bin
/// pairs; `neighbors_of(bin, emit)` enumerates the bins matching `bin`,
/// including `bin` itself.
///
/// Soundness (the Theorem 6 guarantee): in an optimal EDR edit script,
/// every zero-cost (matched) aligned pair occupies approximately-matching
/// bins, so the matched pairs form a feasible transport of size M. All
/// other elements of the longer trajectory are each touched by a distinct
/// edit operation, hence EDR >= max(m, n) - M >= max(m, n) - T*.
///
/// Note this is deliberately *stronger-than-greedy but weaker-than-naive*:
/// the naive residual cancellation (the paper's Figure 5, which only pairs
/// leftover counts of adjacent bins) over-estimates the distance when
/// matched pairs chain across bins (r1 in b0 matching s1 in b1, r2 in b1
/// matching s2 in b2 leaves residuals two bins apart) and would cause
/// false dismissals; the transport formulation handles chains exactly.
int TransportDistance(
    const std::vector<OccupiedBin>& from, const std::vector<OccupiedBin>& to,
    const std::function<void(int, const std::function<void(int)>&)>&
        neighbors_of) {
  int m = 0;
  for (const OccupiedBin& b : from) m += b.count;
  int n = 0;
  for (const OccupiedBin& b : to) n += b.count;
  const int longer = std::max(m, n);
  if (from.empty() || to.empty()) return longer;

  std::unordered_map<int, int> to_index;
  to_index.reserve(to.size() * 2);
  for (size_t j = 0; j < to.size(); ++j) {
    to_index.emplace(to[j].bin, static_cast<int>(j));
  }

  const int p = static_cast<int>(from.size());
  const int q = static_cast<int>(to.size());
  const int source = p + q;
  const int sink = p + q + 1;
  MaxFlow flow(p + q + 2);
  for (int i = 0; i < p; ++i) flow.AddEdge(source, i, from[i].count);
  for (int j = 0; j < q; ++j) flow.AddEdge(p + j, sink, to[j].count);
  for (int i = 0; i < p; ++i) {
    neighbors_of(from[i].bin, [&](int neighbor_bin) {
      const auto it = to_index.find(neighbor_bin);
      if (it != to_index.end()) {
        flow.AddEdge(i, p + it->second,
                     std::numeric_limits<int>::max() / 2);
      }
    });
  }
  const int transported = flow.Compute(source, sink);
  return longer - transported;
}

/// Linear-time upper bound on the maximum transport: each source bin can
/// ship at most min(its mass, total destination mass in its
/// neighborhood); symmetrically for destinations. Ignores capacity
/// sharing between overlapping neighborhoods, hence an upper bound.
int TransportUpperBound(
    const std::vector<int>& hr, const std::vector<int>& hs,
    const std::function<void(int, const std::function<void(int)>&)>&
        neighbors_of) {
  int from_side = 0;
  int to_side = 0;
  for (size_t b = 0; b < hr.size(); ++b) {
    if (hr[b] > 0) {
      int reachable = 0;
      neighbors_of(static_cast<int>(b), [&](int nb) {
        if (nb >= 0 && nb < static_cast<int>(hs.size())) reachable += hs[nb];
      });
      from_side += std::min(hr[b], reachable);
    }
    if (hs[b] > 0) {
      int reachable = 0;
      neighbors_of(static_cast<int>(b), [&](int nb) {
        if (nb >= 0 && nb < static_cast<int>(hr.size())) reachable += hr[nb];
      });
      to_side += std::min(hs[b], reachable);
    }
  }
  return std::min(from_side, to_side);
}

std::vector<OccupiedBin> Occupied(const std::vector<int>& h) {
  std::vector<OccupiedBin> bins;
  for (size_t i = 0; i < h.size(); ++i) {
    if (h[i] > 0) bins.push_back({static_cast<int>(i), h[i]});
  }
  return bins;
}

std::vector<std::pair<int, int>> SparseOf(const std::vector<int>& h) {
  std::vector<std::pair<int, int>> bins;
  for (size_t i = 0; i < h.size(); ++i) {
    if (h[i] > 0) bins.emplace_back(static_cast<int>(i), h[i]);
  }
  return bins;
}

/// Dense neighborhood sums: nbr[b] = total mass of `h` over b's
/// same-or-adjacent bins, computed separably (a horizontal 3-window pass,
/// then a vertical one; ny == 1 degenerates to the path neighborhood).
std::vector<int32_t> NeighborhoodSums(const std::vector<int>& h, int nx,
                                      int ny) {
  std::vector<int32_t> hsum(h.size());
  for (int y = 0; y < ny; ++y) {
    const int row = y * nx;
    for (int x = 0; x < nx; ++x) {
      int32_t s = h[static_cast<size_t>(row + x)];
      if (x > 0) s += h[static_cast<size_t>(row + x - 1)];
      if (x < nx - 1) s += h[static_cast<size_t>(row + x + 1)];
      hsum[static_cast<size_t>(row + x)] = s;
    }
  }
  if (ny == 1) return hsum;
  std::vector<int32_t> nbr(h.size());
  for (int y = 0; y < ny; ++y) {
    const int row = y * nx;
    for (int x = 0; x < nx; ++x) {
      int32_t s = hsum[static_cast<size_t>(row + x)];
      if (y > 0) s += hsum[static_cast<size_t>(row - nx + x)];
      if (y < ny - 1) s += hsum[static_cast<size_t>(row + nx + x)];
      nbr[static_cast<size_t>(row + x)] = s;
    }
  }
  return nbr;
}

// ---------------------------------------------------------------------------
// Sweep kernels. The dense ("side A") half of the fast bound sums up to
// nine bin-major columns element-wise across a block of trajectory ids,
// then clamps by the query bin's mass — pure int32 lane arithmetic, so the
// SSE2 and scalar versions produce identical integers in any order.
// ---------------------------------------------------------------------------

/// Ids per cache block: 3 int32 stack arrays of this size (~12 KB) plus
/// the active column segments stay L1/L2-resident while every query bin
/// streams over the block.
constexpr size_t kSweepBlock = 1024;

inline void AddColumnScalar(const int32_t* col, int32_t* acc, size_t len) {
  for (size_t i = 0; i < len; ++i) acc[i] += col[i];
}

inline void MinCapAccumScalar(int32_t cap, const int32_t* acc, int32_t* a,
                              size_t len) {
  for (size_t i = 0; i < len; ++i) a[i] += std::min(cap, acc[i]);
}

#if defined(EDR_HISTOGRAM_SIMD)

inline __m128i MinI32(__m128i a, __m128i b) {
  // SSE2 has no epi32 min; compose it from a compare mask (SSE4.1's
  // pminsd computes exactly this).
  const __m128i lt = _mm_cmplt_epi32(a, b);
  return _mm_or_si128(_mm_and_si128(lt, a), _mm_andnot_si128(lt, b));
}

inline void AddColumnSimd(const int32_t* col, int32_t* acc, size_t len) {
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + i));
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i),
                     _mm_add_epi32(a, c));
  }
  for (; i < len; ++i) acc[i] += col[i];
}

inline void MinCapAccumSimd(int32_t cap, const int32_t* acc, int32_t* a,
                            size_t len) {
  const __m128i vcap = _mm_set1_epi32(cap);
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i),
                     _mm_add_epi32(s, MinI32(vcap, r)));
  }
  for (; i < len; ++i) a[i] += std::min(cap, acc[i]);
}

#endif  // defined(EDR_HISTOGRAM_SIMD)

#if defined(EDR_HISTOGRAM_AVX2)

// AVX2 bodies compiled via the target attribute (no extra compile flags),
// selected at runtime through the dispatch pointers below — the lane math
// is identical int32 adds/mins, only twice as wide as the SSE2 kernels.

__attribute__((target("avx2"))) void AddColumnAvx2(const int32_t* col,
                                                   int32_t* acc, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i));
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_add_epi32(a, c));
  }
  for (; i < len; ++i) acc[i] += col[i];
}

__attribute__((target("avx2"))) void MinCapAccumAvx2(int32_t cap,
                                                     const int32_t* acc,
                                                     int32_t* a, size_t len) {
  const __m256i vcap = _mm256_set1_epi32(cap);
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_add_epi32(s, _mm256_min_epi32(vcap, r)));
  }
  for (; i < len; ++i) a[i] += std::min(cap, acc[i]);
}

#endif  // defined(EDR_HISTOGRAM_AVX2)

using AddColumnFn = void (*)(const int32_t*, int32_t*, size_t);
using MinCapAccumFn = void (*)(int32_t, const int32_t*, int32_t*, size_t);

/// Widest kernel pair the CPU supports, resolved once per process:
/// AVX2 > SSE2 > scalar. All three compute identical int32 results.
AddColumnFn ResolveAddColumn() {
#if defined(EDR_HISTOGRAM_AVX2)
  if (CpuHasAvx2()) return AddColumnAvx2;
#endif
#if defined(EDR_HISTOGRAM_SIMD)
  return AddColumnSimd;
#else
  return AddColumnScalar;
#endif
}

MinCapAccumFn ResolveMinCapAccum() {
#if defined(EDR_HISTOGRAM_AVX2)
  if (CpuHasAvx2()) return MinCapAccumAvx2;
#endif
#if defined(EDR_HISTOGRAM_SIMD)
  return MinCapAccumSimd;
#else
  return MinCapAccumScalar;
#endif
}

const AddColumnFn g_add_column = ResolveAddColumn();
const MinCapAccumFn g_min_cap_accum = ResolveMinCapAccum();

}  // namespace

HistogramGrid HistogramGrid::For(const DatasetStats& stats, double bin_size) {
  HistogramGrid grid;
  // Guard degenerate thresholds: a zero or tiny bin size would blow the
  // grid up (or divide by zero). Clamping the bin size *up* is always
  // sound — matched pairs stay within adjacent bins for any bin size
  // >= epsilon — it only loosens the bound. Cap the grid at ~512 bins
  // per dimension.
  const double range = std::max(stats.max_xy.x - stats.min_xy.x,
                                stats.max_xy.y - stats.min_xy.y);
  bin_size = std::max({bin_size, range / 512.0, 1e-12});
  grid.bin_size = bin_size;
  // One bin of slack on each side so any element within epsilon of the
  // data range still falls in a real (non-clamped) bin.
  grid.min_x = stats.min_xy.x - bin_size;
  grid.min_y = stats.min_xy.y - bin_size;
  grid.nx = static_cast<int>(
                std::ceil((stats.max_xy.x - grid.min_x) / bin_size)) +
            2;
  grid.ny = static_cast<int>(
                std::ceil((stats.max_xy.y - grid.min_y) / bin_size)) +
            2;
  grid.nx = std::max(grid.nx, 1);
  grid.ny = std::max(grid.ny, 1);
  return grid;
}

int HistogramGrid::BinX(double x) const {
  const int b = static_cast<int>(std::floor((x - min_x) / bin_size));
  return std::clamp(b, 0, nx - 1);
}

int HistogramGrid::BinY(double y) const {
  const int b = static_cast<int>(std::floor((y - min_y) / bin_size));
  return std::clamp(b, 0, ny - 1);
}

std::vector<int> BuildHistogram2D(const Trajectory& t,
                                  const HistogramGrid& grid) {
  std::vector<int> h(static_cast<size_t>(grid.NumBins2D()), 0);
  for (const Point2& p : t) {
    h[static_cast<size_t>(grid.BinY(p.y) * grid.nx + grid.BinX(p.x))]++;
  }
  return h;
}

std::vector<int> BuildHistogram1D(const Trajectory& t,
                                  const HistogramGrid& grid, bool use_x) {
  std::vector<int> h(static_cast<size_t>(use_x ? grid.nx : grid.ny), 0);
  for (const Point2& p : t) {
    h[static_cast<size_t>(use_x ? grid.BinX(p.x) : grid.BinY(p.y))]++;
  }
  return h;
}

int HistogramDistance2D(const std::vector<int>& hr, const std::vector<int>& hs,
                        const HistogramGrid& grid) {
  const int nx = grid.nx;
  const int ny = grid.ny;
  return TransportDistance(
      Occupied(hr), Occupied(hs),
      [nx, ny](int bin, const std::function<void(int)>& emit) {
        const int bx = bin % nx;
        const int by = bin / nx;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int x = bx + dx;
            const int y = by + dy;
            if (x >= 0 && x < nx && y >= 0 && y < ny) emit(y * nx + x);
          }
        }
      });
}

int HistogramDistance1D(const std::vector<int>& hr,
                        const std::vector<int>& hs) {
  return TransportDistance(
      Occupied(hr), Occupied(hs),
      [](int bin, const std::function<void(int)>& emit) {
        emit(bin - 1);
        emit(bin);
        emit(bin + 1);
      });
}

namespace {

int SumOf(const std::vector<int>& h) {
  int total = 0;
  for (const int v : h) total += v;
  return total;
}

std::function<void(int, const std::function<void(int)>&)> GridNeighbors(
    const HistogramGrid& grid) {
  const int nx = grid.nx;
  const int ny = grid.ny;
  return [nx, ny](int bin, const std::function<void(int)>& emit) {
    const int bx = bin % nx;
    const int by = bin / nx;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int x = bx + dx;
        const int y = by + dy;
        if (x >= 0 && x < nx && y >= 0 && y < ny) emit(y * nx + x);
      }
    }
  };
}

}  // namespace

int HistogramDistance2DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs,
                            const HistogramGrid& grid) {
  const int longer = std::max(SumOf(hr), SumOf(hs));
  return longer - TransportUpperBound(hr, hs, GridNeighbors(grid));
}

int HistogramDistance1DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs) {
  const int longer = std::max(SumOf(hr), SumOf(hs));
  return longer -
         TransportUpperBound(hr, hs,
                             [](int bin, const std::function<void(int)>& emit) {
                               emit(bin - 1);
                               emit(bin);
                               emit(bin + 1);
                             });
}

namespace {

/// Builds one flat SoA table: dense counts scattered into the bin-major
/// block, sparse (bin, count) lists concatenated into the flat posting
/// arrays. `build_one(t)` produces the dense histogram of one trajectory.
///
/// Per-trajectory work (histogram build + dense scatter + occupied-bin
/// extraction) fans out over the thread pool: trajectory `id` writes only
/// the `dense[b * n + id]` lanes and its own occupied list, so items are
/// disjoint. The flat posting arrays are then stitched sequentially from a
/// prefix sum of per-trajectory occupied counts — deterministic output,
/// bit-identical to a fully sequential build.
template <typename BuildOneFn>
void BuildFlatTable(const TrajectoryDataset& db, int nx, int ny,
                    BuildOneFn&& build_one, std::vector<int32_t>* dense,
                    std::vector<int32_t>* sparse_bins,
                    std::vector<int32_t>* sparse_counts,
                    std::vector<uint32_t>* sparse_offsets) {
  const size_t n = db.size();
  const size_t num_bins = static_cast<size_t>(nx) * static_cast<size_t>(ny);
  dense->assign(num_bins * n, 0);

  std::vector<std::vector<OccupiedBin>> occupied(n);
  ThreadPool::Global().ParallelFor(n, [&](size_t id) {
    const std::vector<int> h = build_one(db[id]);
    std::vector<OccupiedBin>& occ = occupied[id];
    for (size_t b = 0; b < h.size(); ++b) {
      if (h[b] == 0) continue;
      (*dense)[b * n + id] = h[b];
      occ.push_back({static_cast<int>(b), h[b]});
    }
  });

  sparse_offsets->assign(n + 1, 0);
  for (size_t id = 0; id < n; ++id) {
    (*sparse_offsets)[id + 1] =
        (*sparse_offsets)[id] + static_cast<uint32_t>(occupied[id].size());
  }
  const size_t total = (*sparse_offsets)[n];
  sparse_bins->resize(total);
  sparse_counts->resize(total);
  for (size_t id = 0; id < n; ++id) {
    uint32_t e = (*sparse_offsets)[id];
    for (const OccupiedBin& b : occupied[id]) {
      (*sparse_bins)[e] = b.bin;
      (*sparse_counts)[e] = b.count;
      ++e;
    }
  }
}

}  // namespace

HistogramTable::HistogramTable(const TrajectoryDataset& db, double epsilon,
                               Kind kind, int delta)
    : kind_(kind), delta_(std::max(1, delta)) {
  grid_ = HistogramGrid::For(db.Stats(), epsilon * delta_);
  {
    // %.17g round-trips doubles exactly, so equal keys <=> equal grids.
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "hist.%s/grid=%d.%d/%.17g,%.17g,%.17g",
                  kind_ == Kind::k2D ? "2d" : "1d", grid_.nx, grid_.ny,
                  grid_.min_x, grid_.min_y, grid_.bin_size);
    feature_key_ = buf;
  }
  totals_.reserve(db.size());
  for (const Trajectory& t : db) {
    totals_.push_back(static_cast<int32_t>(t.size()));
  }
  if (kind_ == Kind::k2D) {
    flat_2d_.nx = grid_.nx;
    flat_2d_.ny = grid_.ny;
    flat_2d_.n = db.size();
    BuildFlatTable(
        db, grid_.nx, grid_.ny,
        [this](const Trajectory& t) { return BuildHistogram2D(t, grid_); },
        &flat_2d_.dense, &flat_2d_.sparse_bins,
        &flat_2d_.sparse_counts, &flat_2d_.sparse_offsets);
  } else {
    flat_x_.nx = grid_.nx;
    flat_x_.ny = 1;
    flat_x_.n = db.size();
    BuildFlatTable(
        db, grid_.nx, 1,
        [this](const Trajectory& t) {
          return BuildHistogram1D(t, grid_, /*use_x=*/true);
        },
        &flat_x_.dense, &flat_x_.sparse_bins,
        &flat_x_.sparse_counts, &flat_x_.sparse_offsets);
    flat_y_.nx = grid_.ny;  // the y subranges laid out as a 1-row grid
    flat_y_.ny = 1;
    flat_y_.n = db.size();
    BuildFlatTable(
        db, grid_.ny, 1,
        [this](const Trajectory& t) {
          return BuildHistogram1D(t, grid_, /*use_x=*/false);
        },
        &flat_y_.dense, &flat_y_.sparse_bins,
        &flat_y_.sparse_counts, &flat_y_.sparse_offsets);
  }
}

HistogramTable::QueryHistogram HistogramTable::MakeQueryHistogram(
    const Trajectory& query) const {
  QueryHistogram qh;
  qh.total = static_cast<int>(query.size());
  if (kind_ == Kind::k2D) {
    qh.h2d = BuildHistogram2D(query, grid_);
    qh.sparse_2d = SparseOf(qh.h2d);
    qh.nbr_2d = NeighborhoodSums(qh.h2d, grid_.nx, grid_.ny);
  } else {
    qh.hx = BuildHistogram1D(query, grid_, /*use_x=*/true);
    qh.hy = BuildHistogram1D(query, grid_, /*use_x=*/false);
    qh.sparse_x = SparseOf(qh.hx);
    qh.sparse_y = SparseOf(qh.hy);
    qh.nbr_x = NeighborhoodSums(qh.hx, grid_.nx, 1);
    qh.nbr_y = NeighborhoodSums(qh.hy, grid_.ny, 1);
  }
  return qh;
}

namespace {

/// Rebuilds the occupied-bin list of one trajectory from its flat sparse
/// slice (exact-bound path only; the fast paths read the slice in place).
std::vector<OccupiedBin> OccupiedFromSlice(const std::vector<int32_t>& bins,
                                           const std::vector<int32_t>& counts,
                                           uint32_t begin, uint32_t end) {
  std::vector<OccupiedBin> out;
  out.reserve(end - begin);
  for (uint32_t e = begin; e < end; ++e) {
    out.push_back({bins[e], counts[e]});
  }
  return out;
}

std::vector<OccupiedBin> OccupiedFromPairs(
    const std::vector<std::pair<int, int>>& sparse) {
  std::vector<OccupiedBin> out;
  out.reserve(sparse.size());
  for (const auto& [bin, count] : sparse) out.push_back({bin, count});
  return out;
}

}  // namespace

int HistogramTable::LowerBound(const QueryHistogram& query,
                               uint32_t id) const {
  if (kind_ == Kind::k2D) {
    return TransportDistance(
        OccupiedFromPairs(query.sparse_2d),
        OccupiedFromSlice(flat_2d_.sparse_bins, flat_2d_.sparse_counts,
                          flat_2d_.sparse_offsets[id],
                          flat_2d_.sparse_offsets[id + 1]),
        GridNeighbors(grid_));
  }
  // Each per-dimension HD lower-bounds EDR (Corollary 1); take the max.
  const auto path = [](int bin, const std::function<void(int)>& emit) {
    emit(bin - 1);
    emit(bin);
    emit(bin + 1);
  };
  const int dx = TransportDistance(
      OccupiedFromPairs(query.sparse_x),
      OccupiedFromSlice(flat_x_.sparse_bins, flat_x_.sparse_counts,
                        flat_x_.sparse_offsets[id],
                        flat_x_.sparse_offsets[id + 1]),
      path);
  const int dy = TransportDistance(
      OccupiedFromPairs(query.sparse_y),
      OccupiedFromSlice(flat_y_.sparse_bins, flat_y_.sparse_counts,
                        flat_y_.sparse_offsets[id],
                        flat_y_.sparse_offsets[id + 1]),
      path);
  return std::max(dx, dy);
}

namespace {

/// One trajectory's linear transport upper bound against the query, off
/// the flat tables: min over the two sides of the relaxation. Shared by
/// the per-row FastLowerBound; the sweep computes identical integers
/// block-wise.
int TransportSideScalar(const HistogramTable::QueryHistogram& /*unused*/,
                        const std::vector<std::pair<int, int>>& q_sparse,
                        const std::vector<int32_t>& qnbr, int nx, int ny,
                        size_t n, const std::vector<int32_t>& dense,
                        const std::vector<int32_t>& sparse_bins,
                        const std::vector<int32_t>& sparse_counts,
                        uint32_t begin, uint32_t end, uint32_t id) {
  // Side A: query bins against the trajectory's dense neighborhood mass.
  int side_a = 0;
  for (const auto& [qbin, qcount] : q_sparse) {
    const int bx = qbin % nx;
    const int by = qbin / nx;
    int32_t reach = 0;
    const int y_lo = by > 0 ? by - 1 : 0;
    const int y_hi = by < ny - 1 ? by + 1 : ny - 1;
    const int x_lo = bx > 0 ? bx - 1 : 0;
    const int x_hi = bx < nx - 1 ? bx + 1 : nx - 1;
    for (int y = y_lo; y <= y_hi; ++y) {
      for (int x = x_lo; x <= x_hi; ++x) {
        reach += dense[static_cast<size_t>(y * nx + x) * n + id];
      }
    }
    side_a += std::min(qcount, static_cast<int>(reach));
  }
  // Side B: the trajectory's occupied bins against the query's
  // precomputed neighborhood sums.
  int side_b = 0;
  for (uint32_t e = begin; e < end; ++e) {
    side_b += std::min(sparse_counts[e],
                       qnbr[static_cast<size_t>(sparse_bins[e])]);
  }
  return std::min(side_a, side_b);
}

}  // namespace

int HistogramTable::FastLowerBound(const QueryHistogram& query,
                                   uint32_t id) const {
  const int longer = std::max(query.total, static_cast<int>(totals_[id]));
  if (kind_ == Kind::k2D) {
    const int transport = TransportSideScalar(
        query, query.sparse_2d, query.nbr_2d, flat_2d_.nx, flat_2d_.ny,
        flat_2d_.n, flat_2d_.dense, flat_2d_.sparse_bins,
        flat_2d_.sparse_counts, flat_2d_.sparse_offsets[id],
        flat_2d_.sparse_offsets[id + 1], id);
    return longer - transport;
  }
  const int tx = TransportSideScalar(
      query, query.sparse_x, query.nbr_x, flat_x_.nx, 1, flat_x_.n,
      flat_x_.dense, flat_x_.sparse_bins, flat_x_.sparse_counts,
      flat_x_.sparse_offsets[id], flat_x_.sparse_offsets[id + 1], id);
  const int ty = TransportSideScalar(
      query, query.sparse_y, query.nbr_y, flat_y_.nx, 1, flat_y_.n,
      flat_y_.dense, flat_y_.sparse_bins, flat_y_.sparse_counts,
      flat_y_.sparse_offsets[id], flat_y_.sparse_offsets[id + 1], id);
  // Each per-dimension bound is a valid EDR lower bound; take the max.
  return std::max(longer - tx, longer - ty);
}

namespace {

/// min(side A, side B) of the linear transport bound for every id in the
/// block [i0, i0 + len), len <= kSweepBlock. Side A streams bin-major
/// columns (SIMD when `use_simd`); side B walks the flat sparse slices.
void TransportBlock(int nx, int ny, size_t n,
                    const std::vector<int32_t>& dense,
                    const std::vector<int32_t>& sparse_bins,
                    const std::vector<int32_t>& sparse_counts,
                    const std::vector<uint32_t>& sparse_offsets,
                    const std::vector<std::pair<int, int>>& q_sparse,
                    const std::vector<int32_t>& qnbr, bool use_simd,
                    size_t i0, size_t len, int32_t* out) {
  alignas(32) int32_t acc[kSweepBlock];
  alignas(32) int32_t side_a[kSweepBlock];
  std::fill_n(side_a, len, 0);
  // Widest-available kernels (AVX2/SSE2/scalar, resolved once at startup)
  // when vectorization is requested; the portable scalar bodies otherwise.
  const AddColumnFn add_column = use_simd ? g_add_column : AddColumnScalar;
  const MinCapAccumFn min_cap_accum =
      use_simd ? g_min_cap_accum : MinCapAccumScalar;
  for (const auto& [qbin, qcount] : q_sparse) {
    std::fill_n(acc, len, 0);
    const int bx = qbin % nx;
    const int by = qbin / nx;
    const int y_lo = by > 0 ? by - 1 : 0;
    const int y_hi = by < ny - 1 ? by + 1 : ny - 1;
    const int x_lo = bx > 0 ? bx - 1 : 0;
    const int x_hi = bx < nx - 1 ? bx + 1 : nx - 1;
    for (int y = y_lo; y <= y_hi; ++y) {
      for (int x = x_lo; x <= x_hi; ++x) {
        const int32_t* col =
            dense.data() + static_cast<size_t>(y * nx + x) * n + i0;
        add_column(col, acc, len);
      }
    }
    min_cap_accum(qcount, acc, side_a, len);
  }
  for (size_t j = 0; j < len; ++j) {
    const size_t id = i0 + j;
    int32_t side_b = 0;
    for (uint32_t e = sparse_offsets[id]; e < sparse_offsets[id + 1]; ++e) {
      side_b += std::min(sparse_counts[e],
                         qnbr[static_cast<size_t>(sparse_bins[e])]);
    }
    out[j] = std::min(side_a[j], side_b);
  }
}

}  // namespace

void HistogramTable::SweepBlocks(const QueryHistogram& query, bool use_simd,
                                 size_t block_begin, size_t block_end,
                                 std::vector<int>* out) const {
  const size_t n = totals_.size();
  for (size_t block = block_begin; block < block_end; ++block) {
    const size_t i0 = block * kSweepBlock;
    const size_t len = std::min(kSweepBlock, n - i0);
    if (kind_ == Kind::k2D) {
      alignas(32) int32_t t[kSweepBlock];
      TransportBlock(flat_2d_.nx, flat_2d_.ny, n, flat_2d_.dense,
                     flat_2d_.sparse_bins, flat_2d_.sparse_counts,
                     flat_2d_.sparse_offsets, query.sparse_2d, query.nbr_2d,
                     use_simd, i0, len, t);
      for (size_t j = 0; j < len; ++j) {
        const int longer =
            std::max(query.total, static_cast<int>(totals_[i0 + j]));
        (*out)[i0 + j] = longer - t[j];
      }
    } else {
      alignas(32) int32_t tx[kSweepBlock];
      alignas(32) int32_t ty[kSweepBlock];
      TransportBlock(flat_x_.nx, 1, n, flat_x_.dense, flat_x_.sparse_bins,
                     flat_x_.sparse_counts, flat_x_.sparse_offsets,
                     query.sparse_x, query.nbr_x, use_simd, i0, len, tx);
      TransportBlock(flat_y_.nx, 1, n, flat_y_.dense, flat_y_.sparse_bins,
                     flat_y_.sparse_counts, flat_y_.sparse_offsets,
                     query.sparse_y, query.nbr_y, use_simd, i0, len, ty);
      for (size_t j = 0; j < len; ++j) {
        const int longer =
            std::max(query.total, static_cast<int>(totals_[i0 + j]));
        (*out)[i0 + j] = std::max(longer - tx[j], longer - ty[j]);
      }
    }
  }
}

void HistogramTable::SweepImpl(const QueryHistogram& query, bool use_simd,
                               std::vector<int>* out) const {
  const size_t n = totals_.size();
  out->resize(n);
  SweepBlocks(query, use_simd, 0, (n + kSweepBlock - 1) / kSweepBlock, out);
}

void HistogramTable::FastLowerBoundSweep(const QueryHistogram& query,
                                         std::vector<int>* out) const {
#if defined(EDR_HISTOGRAM_SIMD)
  SweepImpl(query, /*use_simd=*/true, out);
#else
  SweepImpl(query, /*use_simd=*/false, out);
#endif
}

void HistogramTable::FastLowerBoundSweepParallel(
    const QueryHistogram& query, std::vector<int>* out,
    const KnnOptions& options) const {
  const unsigned workers = ResolveIntraQueryWorkers(options);
  const size_t n = totals_.size();
  const size_t num_blocks = (n + kSweepBlock - 1) / kSweepBlock;
  if (workers <= 1 || num_blocks <= 1) {
    FastLowerBoundSweep(query, out);
    return;
  }
#if defined(EDR_HISTOGRAM_SIMD)
  constexpr bool use_simd = true;
#else
  constexpr bool use_simd = false;
#endif
  out->resize(n);
  // Contiguous block ranges, one per participant; every block writes only
  // its own kSweepBlock-aligned output slice, so the sharded sweep is
  // bit-identical to the sequential one.
  const size_t ranges = std::min<size_t>(workers, num_blocks);
  IntraQueryPool(options).ParallelFor(
      ranges,
      [&](size_t r) {
        const size_t begin = r * num_blocks / ranges;
        const size_t end = (r + 1) * num_blocks / ranges;
        SweepBlocks(query, use_simd, begin, end, out);
      },
      static_cast<unsigned>(ranges));
}

void HistogramTable::FastLowerBoundSweepScalar(const QueryHistogram& query,
                                               std::vector<int>* out) const {
  SweepImpl(query, /*use_simd=*/false, out);
}

int HistogramTable::LowerBound(const Trajectory& query, uint32_t id) const {
  return LowerBound(MakeQueryHistogram(query), id);
}

}  // namespace edr
