#include "pruning/histogram.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>

namespace edr {

namespace {

/// A small Dinic max-flow solver used to compute the maximal cancellation
/// between positive and negative histogram residuals. Graph sizes here are
/// tiny (hundreds of nodes), so simplicity beats asymptotic tuning.
class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes) : graph_(num_nodes) {}

  void AddEdge(int from, int to, int capacity) {
    graph_[from].push_back(
        {to, capacity, static_cast<int>(graph_[to].size())});
    graph_[to].push_back(
        {from, 0, static_cast<int>(graph_[from].size()) - 1});
  }

  int Compute(int source, int sink) {
    int flow = 0;
    while (Bfs(source, sink)) {
      iter_.assign(graph_.size(), 0);
      int pushed = 0;
      while ((pushed = Dfs(source, sink,
                           std::numeric_limits<int>::max())) > 0) {
        flow += pushed;
      }
    }
    return flow;
  }

 private:
  struct Edge {
    int to;
    int capacity;
    int reverse_index;
  };

  bool Bfs(int source, int sink) {
    level_.assign(graph_.size(), -1);
    std::queue<int> queue;
    level_[source] = 0;
    queue.push(source);
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop();
      for (const Edge& e : graph_[v]) {
        if (e.capacity > 0 && level_[e.to] < 0) {
          level_[e.to] = level_[v] + 1;
          queue.push(e.to);
        }
      }
    }
    return level_[sink] >= 0;
  }

  int Dfs(int v, int sink, int limit) {
    if (v == sink) return limit;
    for (size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
      Edge& e = graph_[v][i];
      if (e.capacity <= 0 || level_[e.to] != level_[v] + 1) continue;
      const int pushed = Dfs(e.to, sink, std::min(limit, e.capacity));
      if (pushed > 0) {
        e.capacity -= pushed;
        graph_[e.to][e.reverse_index].capacity += pushed;
        return pushed;
      }
    }
    return 0;
  }

  std::vector<std::vector<Edge>> graph_;
  std::vector<int> level_;
  std::vector<size_t> iter_;
};

struct OccupiedBin {
  int bin;
  int count;
};

/// Computes max(m, n) - T*, where T* is the maximum transport of mass from
/// HR bins to HS bins along approximately-matching (same or adjacent) bin
/// pairs; `neighbors_of(bin, emit)` enumerates the bins matching `bin`,
/// including `bin` itself.
///
/// Soundness (the Theorem 6 guarantee): in an optimal EDR edit script,
/// every zero-cost (matched) aligned pair occupies approximately-matching
/// bins, so the matched pairs form a feasible transport of size M. All
/// other elements of the longer trajectory are each touched by a distinct
/// edit operation, hence EDR >= max(m, n) - M >= max(m, n) - T*.
///
/// Note this is deliberately *stronger-than-greedy but weaker-than-naive*:
/// the naive residual cancellation (the paper's Figure 5, which only pairs
/// leftover counts of adjacent bins) over-estimates the distance when
/// matched pairs chain across bins (r1 in b0 matching s1 in b1, r2 in b1
/// matching s2 in b2 leaves residuals two bins apart) and would cause
/// false dismissals; the transport formulation handles chains exactly.
int TransportDistance(
    const std::vector<OccupiedBin>& from, const std::vector<OccupiedBin>& to,
    const std::function<void(int, const std::function<void(int)>&)>&
        neighbors_of) {
  int m = 0;
  for (const OccupiedBin& b : from) m += b.count;
  int n = 0;
  for (const OccupiedBin& b : to) n += b.count;
  const int longer = std::max(m, n);
  if (from.empty() || to.empty()) return longer;

  std::unordered_map<int, int> to_index;
  to_index.reserve(to.size() * 2);
  for (size_t j = 0; j < to.size(); ++j) {
    to_index.emplace(to[j].bin, static_cast<int>(j));
  }

  const int p = static_cast<int>(from.size());
  const int q = static_cast<int>(to.size());
  const int source = p + q;
  const int sink = p + q + 1;
  MaxFlow flow(p + q + 2);
  for (int i = 0; i < p; ++i) flow.AddEdge(source, i, from[i].count);
  for (int j = 0; j < q; ++j) flow.AddEdge(p + j, sink, to[j].count);
  for (int i = 0; i < p; ++i) {
    neighbors_of(from[i].bin, [&](int neighbor_bin) {
      const auto it = to_index.find(neighbor_bin);
      if (it != to_index.end()) {
        flow.AddEdge(i, p + it->second,
                     std::numeric_limits<int>::max() / 2);
      }
    });
  }
  const int transported = flow.Compute(source, sink);
  return longer - transported;
}

/// Linear-time upper bound on the maximum transport: each source bin can
/// ship at most min(its mass, total destination mass in its
/// neighborhood); symmetrically for destinations. Ignores capacity
/// sharing between overlapping neighborhoods, hence an upper bound.
int TransportUpperBound(
    const std::vector<int>& hr, const std::vector<int>& hs,
    const std::function<void(int, const std::function<void(int)>&)>&
        neighbors_of) {
  int from_side = 0;
  int to_side = 0;
  for (size_t b = 0; b < hr.size(); ++b) {
    if (hr[b] > 0) {
      int reachable = 0;
      neighbors_of(static_cast<int>(b), [&](int nb) {
        if (nb >= 0 && nb < static_cast<int>(hs.size())) reachable += hs[nb];
      });
      from_side += std::min(hr[b], reachable);
    }
    if (hs[b] > 0) {
      int reachable = 0;
      neighbors_of(static_cast<int>(b), [&](int nb) {
        if (nb >= 0 && nb < static_cast<int>(hr.size())) reachable += hr[nb];
      });
      to_side += std::min(hs[b], reachable);
    }
  }
  return std::min(from_side, to_side);
}

std::vector<OccupiedBin> Occupied(const std::vector<int>& h) {
  std::vector<OccupiedBin> bins;
  for (size_t i = 0; i < h.size(); ++i) {
    if (h[i] > 0) bins.push_back({static_cast<int>(i), h[i]});
  }
  return bins;
}

std::vector<std::pair<int, int>> SparseOf(const std::vector<int>& h) {
  std::vector<std::pair<int, int>> bins;
  for (size_t i = 0; i < h.size(); ++i) {
    if (h[i] > 0) bins.emplace_back(static_cast<int>(i), h[i]);
  }
  return bins;
}

/// One side of the linear transport upper bound, sparse occupied list
/// against a dense counterpart, 3x3 grid neighborhoods. Hand-rolled loops:
/// this is the hottest filter in the combined searchers.
int SideBound2D(const std::vector<std::pair<int, int>>& from,
                const std::vector<int>& to_dense, int nx, int ny) {
  int bound = 0;
  for (const auto& [bin, count] : from) {
    const int bx = bin % nx;
    const int by = bin / nx;
    int reachable = 0;
    for (int dy = -1; dy <= 1; ++dy) {
      const int y = by + dy;
      if (y < 0 || y >= ny) continue;
      const int row = y * nx;
      const int x_lo = bx > 0 ? bx - 1 : 0;
      const int x_hi = bx < nx - 1 ? bx + 1 : nx - 1;
      for (int x = x_lo; x <= x_hi; ++x) {
        reachable += to_dense[static_cast<size_t>(row + x)];
      }
    }
    bound += std::min(count, reachable);
  }
  return bound;
}

/// 1-D analogue of SideBound2D (path neighborhoods).
int SideBound1D(const std::vector<std::pair<int, int>>& from,
                const std::vector<int>& to_dense) {
  const int n = static_cast<int>(to_dense.size());
  int bound = 0;
  for (const auto& [bin, count] : from) {
    int reachable = 0;
    for (int b = std::max(0, bin - 1); b <= std::min(n - 1, bin + 1); ++b) {
      reachable += to_dense[static_cast<size_t>(b)];
    }
    bound += std::min(count, reachable);
  }
  return bound;
}

}  // namespace

HistogramGrid HistogramGrid::For(const DatasetStats& stats, double bin_size) {
  HistogramGrid grid;
  // Guard degenerate thresholds: a zero or tiny bin size would blow the
  // grid up (or divide by zero). Clamping the bin size *up* is always
  // sound — matched pairs stay within adjacent bins for any bin size
  // >= epsilon — it only loosens the bound. Cap the grid at ~512 bins
  // per dimension.
  const double range = std::max(stats.max_xy.x - stats.min_xy.x,
                                stats.max_xy.y - stats.min_xy.y);
  bin_size = std::max({bin_size, range / 512.0, 1e-12});
  grid.bin_size = bin_size;
  // One bin of slack on each side so any element within epsilon of the
  // data range still falls in a real (non-clamped) bin.
  grid.min_x = stats.min_xy.x - bin_size;
  grid.min_y = stats.min_xy.y - bin_size;
  grid.nx = static_cast<int>(
                std::ceil((stats.max_xy.x - grid.min_x) / bin_size)) +
            2;
  grid.ny = static_cast<int>(
                std::ceil((stats.max_xy.y - grid.min_y) / bin_size)) +
            2;
  grid.nx = std::max(grid.nx, 1);
  grid.ny = std::max(grid.ny, 1);
  return grid;
}

int HistogramGrid::BinX(double x) const {
  const int b = static_cast<int>(std::floor((x - min_x) / bin_size));
  return std::clamp(b, 0, nx - 1);
}

int HistogramGrid::BinY(double y) const {
  const int b = static_cast<int>(std::floor((y - min_y) / bin_size));
  return std::clamp(b, 0, ny - 1);
}

std::vector<int> BuildHistogram2D(const Trajectory& t,
                                  const HistogramGrid& grid) {
  std::vector<int> h(static_cast<size_t>(grid.NumBins2D()), 0);
  for (const Point2& p : t) {
    h[static_cast<size_t>(grid.BinY(p.y) * grid.nx + grid.BinX(p.x))]++;
  }
  return h;
}

std::vector<int> BuildHistogram1D(const Trajectory& t,
                                  const HistogramGrid& grid, bool use_x) {
  std::vector<int> h(static_cast<size_t>(use_x ? grid.nx : grid.ny), 0);
  for (const Point2& p : t) {
    h[static_cast<size_t>(use_x ? grid.BinX(p.x) : grid.BinY(p.y))]++;
  }
  return h;
}

int HistogramDistance2D(const std::vector<int>& hr, const std::vector<int>& hs,
                        const HistogramGrid& grid) {
  const int nx = grid.nx;
  const int ny = grid.ny;
  return TransportDistance(
      Occupied(hr), Occupied(hs),
      [nx, ny](int bin, const std::function<void(int)>& emit) {
        const int bx = bin % nx;
        const int by = bin / nx;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int x = bx + dx;
            const int y = by + dy;
            if (x >= 0 && x < nx && y >= 0 && y < ny) emit(y * nx + x);
          }
        }
      });
}

int HistogramDistance1D(const std::vector<int>& hr,
                        const std::vector<int>& hs) {
  return TransportDistance(
      Occupied(hr), Occupied(hs),
      [](int bin, const std::function<void(int)>& emit) {
        emit(bin - 1);
        emit(bin);
        emit(bin + 1);
      });
}

namespace {

int SumOf(const std::vector<int>& h) {
  int total = 0;
  for (const int v : h) total += v;
  return total;
}

std::function<void(int, const std::function<void(int)>&)> GridNeighbors(
    const HistogramGrid& grid) {
  const int nx = grid.nx;
  const int ny = grid.ny;
  return [nx, ny](int bin, const std::function<void(int)>& emit) {
    const int bx = bin % nx;
    const int by = bin / nx;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int x = bx + dx;
        const int y = by + dy;
        if (x >= 0 && x < nx && y >= 0 && y < ny) emit(y * nx + x);
      }
    }
  };
}

}  // namespace

int HistogramDistance2DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs,
                            const HistogramGrid& grid) {
  const int longer = std::max(SumOf(hr), SumOf(hs));
  return longer - TransportUpperBound(hr, hs, GridNeighbors(grid));
}

int HistogramDistance1DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs) {
  const int longer = std::max(SumOf(hr), SumOf(hs));
  return longer -
         TransportUpperBound(hr, hs,
                             [](int bin, const std::function<void(int)>& emit) {
                               emit(bin - 1);
                               emit(bin);
                               emit(bin + 1);
                             });
}

HistogramTable::HistogramTable(const TrajectoryDataset& db, double epsilon,
                               Kind kind, int delta)
    : kind_(kind), delta_(std::max(1, delta)) {
  grid_ = HistogramGrid::For(db.Stats(), epsilon * delta_);
  totals_.reserve(db.size());
  for (const Trajectory& t : db) {
    totals_.push_back(static_cast<int>(t.size()));
  }
  if (kind_ == Kind::k2D) {
    h2d_.reserve(db.size());
    sparse_2d_.reserve(db.size());
    for (const Trajectory& t : db) {
      h2d_.push_back(BuildHistogram2D(t, grid_));
      sparse_2d_.push_back(SparseOf(h2d_.back()));
    }
  } else {
    hx_.reserve(db.size());
    hy_.reserve(db.size());
    sparse_x_.reserve(db.size());
    sparse_y_.reserve(db.size());
    for (const Trajectory& t : db) {
      hx_.push_back(BuildHistogram1D(t, grid_, /*use_x=*/true));
      hy_.push_back(BuildHistogram1D(t, grid_, /*use_x=*/false));
      sparse_x_.push_back(SparseOf(hx_.back()));
      sparse_y_.push_back(SparseOf(hy_.back()));
    }
  }
}

HistogramTable::QueryHistogram HistogramTable::MakeQueryHistogram(
    const Trajectory& query) const {
  QueryHistogram qh;
  qh.total = static_cast<int>(query.size());
  if (kind_ == Kind::k2D) {
    qh.h2d = BuildHistogram2D(query, grid_);
    qh.sparse_2d = SparseOf(qh.h2d);
  } else {
    qh.hx = BuildHistogram1D(query, grid_, /*use_x=*/true);
    qh.hy = BuildHistogram1D(query, grid_, /*use_x=*/false);
    qh.sparse_x = SparseOf(qh.hx);
    qh.sparse_y = SparseOf(qh.hy);
  }
  return qh;
}

int HistogramTable::LowerBound(const QueryHistogram& query,
                               uint32_t id) const {
  if (kind_ == Kind::k2D) {
    return HistogramDistance2D(query.h2d, h2d_[id], grid_);
  }
  // Each per-dimension HD lower-bounds EDR (Corollary 1); take the max.
  const int dx = HistogramDistance1D(query.hx, hx_[id]);
  const int dy = HistogramDistance1D(query.hy, hy_[id]);
  return std::max(dx, dy);
}

int HistogramTable::FastLowerBound(const QueryHistogram& query,
                                   uint32_t id) const {
  const int longer = std::max(query.total, totals_[id]);
  if (kind_ == Kind::k2D) {
    const int transport =
        std::min(SideBound2D(query.sparse_2d, h2d_[id], grid_.nx, grid_.ny),
                 SideBound2D(sparse_2d_[id], query.h2d, grid_.nx, grid_.ny));
    return longer - transport;
  }
  const int tx = std::min(SideBound1D(query.sparse_x, hx_[id]),
                          SideBound1D(sparse_x_[id], query.hx));
  const int ty = std::min(SideBound1D(query.sparse_y, hy_[id]),
                          SideBound1D(sparse_y_[id], query.hy));
  // Each per-dimension bound is a valid EDR lower bound; take the max.
  return std::max(longer - tx, longer - ty);
}

int HistogramTable::LowerBound(const Trajectory& query, uint32_t id) const {
  return LowerBound(MakeQueryHistogram(query), id);
}

}  // namespace edr
