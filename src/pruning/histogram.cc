#include "pruning/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "core/cpu.h"
#include "query/intra_query.h"
#include "query/plan_cache.h"
#include "query/thread_pool.h"

#if defined(__SSE2__) && !defined(EDR_DISABLE_SIMD)
#include <emmintrin.h>
#define EDR_HISTOGRAM_SIMD 1
#endif

#if defined(__x86_64__) && defined(__GNUC__) && !defined(EDR_DISABLE_SIMD)
#include <immintrin.h>
#define EDR_HISTOGRAM_AVX2 1
#define EDR_HISTOGRAM_AVX512 1
#endif

#if defined(__aarch64__) && !defined(EDR_DISABLE_SIMD)
#include <arm_neon.h>
#define EDR_HISTOGRAM_NEON 1
#endif

namespace edr {

namespace {

/// A small Dinic max-flow solver used to compute the maximal cancellation
/// between positive and negative histogram residuals. Graph sizes here are
/// tiny (hundreds of nodes), so simplicity beats asymptotic tuning.
class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes) : graph_(num_nodes) {}

  void AddEdge(int from, int to, int capacity) {
    graph_[from].push_back(
        {to, capacity, static_cast<int>(graph_[to].size())});
    graph_[to].push_back(
        {from, 0, static_cast<int>(graph_[from].size()) - 1});
  }

  int Compute(int source, int sink) {
    int flow = 0;
    while (Bfs(source, sink)) {
      iter_.assign(graph_.size(), 0);
      int pushed = 0;
      while ((pushed = Dfs(source, sink,
                           std::numeric_limits<int>::max())) > 0) {
        flow += pushed;
      }
    }
    return flow;
  }

 private:
  struct Edge {
    int to;
    int capacity;
    int reverse_index;
  };

  bool Bfs(int source, int sink) {
    level_.assign(graph_.size(), -1);
    std::queue<int> queue;
    level_[source] = 0;
    queue.push(source);
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop();
      for (const Edge& e : graph_[v]) {
        if (e.capacity > 0 && level_[e.to] < 0) {
          level_[e.to] = level_[v] + 1;
          queue.push(e.to);
        }
      }
    }
    return level_[sink] >= 0;
  }

  int Dfs(int v, int sink, int limit) {
    if (v == sink) return limit;
    for (size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
      Edge& e = graph_[v][i];
      if (e.capacity <= 0 || level_[e.to] != level_[v] + 1) continue;
      const int pushed = Dfs(e.to, sink, std::min(limit, e.capacity));
      if (pushed > 0) {
        e.capacity -= pushed;
        graph_[e.to][e.reverse_index].capacity += pushed;
        return pushed;
      }
    }
    return 0;
  }

  std::vector<std::vector<Edge>> graph_;
  std::vector<int> level_;
  std::vector<size_t> iter_;
};

struct OccupiedBin {
  int bin;
  int count;
};

/// Computes max(m, n) - T*, where T* is the maximum transport of mass from
/// HR bins to HS bins along approximately-matching (same or adjacent) bin
/// pairs; `neighbors_of(bin, emit)` enumerates the bins matching `bin`,
/// including `bin` itself.
///
/// Soundness (the Theorem 6 guarantee): in an optimal EDR edit script,
/// every zero-cost (matched) aligned pair occupies approximately-matching
/// bins, so the matched pairs form a feasible transport of size M. All
/// other elements of the longer trajectory are each touched by a distinct
/// edit operation, hence EDR >= max(m, n) - M >= max(m, n) - T*.
///
/// Note this is deliberately *stronger-than-greedy but weaker-than-naive*:
/// the naive residual cancellation (the paper's Figure 5, which only pairs
/// leftover counts of adjacent bins) over-estimates the distance when
/// matched pairs chain across bins (r1 in b0 matching s1 in b1, r2 in b1
/// matching s2 in b2 leaves residuals two bins apart) and would cause
/// false dismissals; the transport formulation handles chains exactly.
int TransportDistance(
    const std::vector<OccupiedBin>& from, const std::vector<OccupiedBin>& to,
    const std::function<void(int, const std::function<void(int)>&)>&
        neighbors_of) {
  int m = 0;
  for (const OccupiedBin& b : from) m += b.count;
  int n = 0;
  for (const OccupiedBin& b : to) n += b.count;
  const int longer = std::max(m, n);
  if (from.empty() || to.empty()) return longer;

  std::unordered_map<int, int> to_index;
  to_index.reserve(to.size() * 2);
  for (size_t j = 0; j < to.size(); ++j) {
    to_index.emplace(to[j].bin, static_cast<int>(j));
  }

  const int p = static_cast<int>(from.size());
  const int q = static_cast<int>(to.size());
  const int source = p + q;
  const int sink = p + q + 1;
  MaxFlow flow(p + q + 2);
  for (int i = 0; i < p; ++i) flow.AddEdge(source, i, from[i].count);
  for (int j = 0; j < q; ++j) flow.AddEdge(p + j, sink, to[j].count);
  for (int i = 0; i < p; ++i) {
    neighbors_of(from[i].bin, [&](int neighbor_bin) {
      const auto it = to_index.find(neighbor_bin);
      if (it != to_index.end()) {
        flow.AddEdge(i, p + it->second,
                     std::numeric_limits<int>::max() / 2);
      }
    });
  }
  const int transported = flow.Compute(source, sink);
  return longer - transported;
}

/// Linear-time upper bound on the maximum transport: each source bin can
/// ship at most min(its mass, total destination mass in its
/// neighborhood); symmetrically for destinations. Ignores capacity
/// sharing between overlapping neighborhoods, hence an upper bound.
int TransportUpperBound(
    const std::vector<int>& hr, const std::vector<int>& hs,
    const std::function<void(int, const std::function<void(int)>&)>&
        neighbors_of) {
  int from_side = 0;
  int to_side = 0;
  for (size_t b = 0; b < hr.size(); ++b) {
    if (hr[b] > 0) {
      int reachable = 0;
      neighbors_of(static_cast<int>(b), [&](int nb) {
        if (nb >= 0 && nb < static_cast<int>(hs.size())) reachable += hs[nb];
      });
      from_side += std::min(hr[b], reachable);
    }
    if (hs[b] > 0) {
      int reachable = 0;
      neighbors_of(static_cast<int>(b), [&](int nb) {
        if (nb >= 0 && nb < static_cast<int>(hr.size())) reachable += hr[nb];
      });
      to_side += std::min(hs[b], reachable);
    }
  }
  return std::min(from_side, to_side);
}

std::vector<OccupiedBin> Occupied(const std::vector<int>& h) {
  std::vector<OccupiedBin> bins;
  for (size_t i = 0; i < h.size(); ++i) {
    if (h[i] > 0) bins.push_back({static_cast<int>(i), h[i]});
  }
  return bins;
}

std::vector<std::pair<int, int>> SparseOf(const std::vector<int>& h) {
  std::vector<std::pair<int, int>> bins;
  for (size_t i = 0; i < h.size(); ++i) {
    if (h[i] > 0) bins.emplace_back(static_cast<int>(i), h[i]);
  }
  return bins;
}

/// Dense neighborhood sums: nbr[b] = total mass of `h` over b's
/// same-or-adjacent bins, computed separably (a horizontal 3-window pass,
/// then a vertical one; ny == 1 degenerates to the path neighborhood).
std::vector<int32_t> NeighborhoodSums(const std::vector<int>& h, int nx,
                                      int ny) {
  std::vector<int32_t> hsum(h.size());
  for (int y = 0; y < ny; ++y) {
    const int row = y * nx;
    for (int x = 0; x < nx; ++x) {
      int32_t s = h[static_cast<size_t>(row + x)];
      if (x > 0) s += h[static_cast<size_t>(row + x - 1)];
      if (x < nx - 1) s += h[static_cast<size_t>(row + x + 1)];
      hsum[static_cast<size_t>(row + x)] = s;
    }
  }
  if (ny == 1) return hsum;
  std::vector<int32_t> nbr(h.size());
  for (int y = 0; y < ny; ++y) {
    const int row = y * nx;
    for (int x = 0; x < nx; ++x) {
      int32_t s = hsum[static_cast<size_t>(row + x)];
      if (y > 0) s += hsum[static_cast<size_t>(row - nx + x)];
      if (y < ny - 1) s += hsum[static_cast<size_t>(row + nx + x)];
      nbr[static_cast<size_t>(row + x)] = s;
    }
  }
  return nbr;
}

// ---------------------------------------------------------------------------
// Sweep kernels. The column ("side A") half of the fast bound sums up to
// nine bin columns element-wise across a block of trajectory ids, then
// clamps by the query bin's mass — pure int32 lane arithmetic, so every
// lane width (scalar/SSE2/AVX2/AVX-512/NEON) produces identical integers
// in any order.
// ---------------------------------------------------------------------------

/// Ids per cache block: 3 int32 stack arrays of this size (~12 KB) plus
/// the active column segments stay L1/L2-resident while every query bin
/// streams over the block. Must fit uint16 local posting ids.
constexpr size_t kSweepBlock = 1024;
static_assert(kSweepBlock <= 65536, "blocked-sparse local ids are uint16");

inline void AddColumnScalar(const int32_t* col, int32_t* acc, size_t len) {
  for (size_t i = 0; i < len; ++i) acc[i] += col[i];
}

inline void MinCapAccumScalar(int32_t cap, const int32_t* acc, int32_t* a,
                              size_t len) {
  for (size_t i = 0; i < len; ++i) a[i] += std::min(cap, acc[i]);
}

#if defined(EDR_HISTOGRAM_SIMD)

inline __m128i MinI32(__m128i a, __m128i b) {
  // SSE2 has no epi32 min; compose it from a compare mask (SSE4.1's
  // pminsd computes exactly this).
  const __m128i lt = _mm_cmplt_epi32(a, b);
  return _mm_or_si128(_mm_and_si128(lt, a), _mm_andnot_si128(lt, b));
}

inline void AddColumnSimd(const int32_t* col, int32_t* acc, size_t len) {
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + i));
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i),
                     _mm_add_epi32(a, c));
  }
  for (; i < len; ++i) acc[i] += col[i];
}

inline void MinCapAccumSimd(int32_t cap, const int32_t* acc, int32_t* a,
                            size_t len) {
  const __m128i vcap = _mm_set1_epi32(cap);
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i),
                     _mm_add_epi32(s, MinI32(vcap, r)));
  }
  for (; i < len; ++i) a[i] += std::min(cap, acc[i]);
}

#endif  // defined(EDR_HISTOGRAM_SIMD)

#if defined(EDR_HISTOGRAM_AVX2)

// AVX2/AVX-512 bodies compiled via the target attribute (no extra compile
// flags), selected at runtime through ActiveKernelLevel() — the lane math
// is identical int32 adds/mins, only wider than the SSE2 kernels.

__attribute__((target("avx2"))) void AddColumnAvx2(const int32_t* col,
                                                   int32_t* acc, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i));
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_add_epi32(a, c));
  }
  for (; i < len; ++i) acc[i] += col[i];
}

__attribute__((target("avx2"))) void MinCapAccumAvx2(int32_t cap,
                                                     const int32_t* acc,
                                                     int32_t* a, size_t len) {
  const __m256i vcap = _mm256_set1_epi32(cap);
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_add_epi32(s, _mm256_min_epi32(vcap, r)));
  }
  for (; i < len; ++i) a[i] += std::min(cap, acc[i]);
}

#endif  // defined(EDR_HISTOGRAM_AVX2)

#if defined(EDR_HISTOGRAM_AVX512)

__attribute__((target("avx512f"))) void AddColumnAvx512(const int32_t* col,
                                                        int32_t* acc,
                                                        size_t len) {
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m512i c = _mm512_loadu_si512(col + i);
    const __m512i a = _mm512_loadu_si512(acc + i);
    _mm512_storeu_si512(acc + i, _mm512_add_epi32(a, c));
  }
  for (; i < len; ++i) acc[i] += col[i];
}

__attribute__((target("avx512f"))) void MinCapAccumAvx512(int32_t cap,
                                                          const int32_t* acc,
                                                          int32_t* a,
                                                          size_t len) {
  const __m512i vcap = _mm512_set1_epi32(cap);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m512i r = _mm512_loadu_si512(acc + i);
    const __m512i s = _mm512_loadu_si512(a + i);
    _mm512_storeu_si512(a + i,
                        _mm512_add_epi32(s, _mm512_min_epi32(vcap, r)));
  }
  for (; i < len; ++i) a[i] += std::min(cap, acc[i]);
}

#endif  // defined(EDR_HISTOGRAM_AVX512)

#if defined(EDR_HISTOGRAM_NEON)

inline void AddColumnNeon(const int32_t* col, int32_t* acc, size_t len) {
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    vst1q_s32(acc + i, vaddq_s32(vld1q_s32(acc + i), vld1q_s32(col + i)));
  }
  for (; i < len; ++i) acc[i] += col[i];
}

inline void MinCapAccumNeon(int32_t cap, const int32_t* acc, int32_t* a,
                            size_t len) {
  const int32x4_t vcap = vdupq_n_s32(cap);
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    vst1q_s32(a + i, vaddq_s32(vld1q_s32(a + i),
                               vminq_s32(vcap, vld1q_s32(acc + i))));
  }
  for (; i < len; ++i) a[i] += std::min(cap, acc[i]);
}

#endif  // defined(EDR_HISTOGRAM_NEON)

// ---------------------------------------------------------------------------
// Bitmap and blocked-sparse block kernels. A bitmap column contributes +1
// per set bit; a sparse column scatters (local id, count) postings. Both
// add the same integers to distinct accumulator slots whatever the lane
// shape, so every body below is bit-identical to the scalar walk.
// ---------------------------------------------------------------------------

/// Scalar reference: count-trailing-zeros walk over the set bits.
inline void BitmapAccumScalar(const uint64_t* words, size_t word_count,
                              int32_t* acc) {
  for (size_t w = 0; w < word_count; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      acc[w * 64 + static_cast<size_t>(__builtin_ctzll(bits))] += 1;
      bits &= bits - 1;
    }
  }
}

inline void SparseScatterScalar(const uint16_t* local_ids,
                                const int32_t* counts, uint32_t begin,
                                uint32_t end, int32_t* acc) {
  for (uint32_t p = begin; p < end; ++p) {
    acc[local_ids[p]] += counts[p];
  }
}

#if defined(EDR_HISTOGRAM_AVX2)

/// Expands each byte of a word into eight 0/-1 lanes (bit b set <=> lane b
/// matches its power-of-two probe) and subtracts the mask from the
/// accumulator — one masked add per byte instead of one scalar add per set
/// bit. Lanes past a short tail block read and write back unchanged
/// accumulator slots (their bits are never set), staying inside the
/// kSweepBlock stack buffer because word_count * 64 <= kSweepBlock.
__attribute__((target("avx2"))) void BitmapAccumAvx2(const uint64_t* words,
                                                     size_t word_count,
                                                     int32_t* acc) {
  const __m256i bitpos = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  for (size_t w = 0; w < word_count; ++w) {
    const uint64_t bits = words[w];
    if (bits == 0) continue;
    int32_t* base = acc + w * 64;
    for (size_t c = 0; c < 8; ++c) {
      const int32_t byte = static_cast<int32_t>((bits >> (c * 8)) & 0xFF);
      if (byte == 0) continue;
      const __m256i vb = _mm256_set1_epi32(byte);
      const __m256i m =
          _mm256_cmpeq_epi32(_mm256_and_si256(vb, bitpos), bitpos);
      __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + c * 8));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(base + c * 8),
                          _mm256_sub_epi32(a, m));
    }
  }
}

#endif  // defined(EDR_HISTOGRAM_AVX2)

#if defined(EDR_HISTOGRAM_AVX512)

/// The word's 16-bit slices are the mask registers directly:
/// four masked 16-lane +1 adds per word.
__attribute__((target("avx512f"))) void BitmapAccumAvx512(
    const uint64_t* words, size_t word_count, int32_t* acc) {
  const __m512i ones = _mm512_set1_epi32(1);
  for (size_t w = 0; w < word_count; ++w) {
    const uint64_t bits = words[w];
    if (bits == 0) continue;
    int32_t* base = acc + w * 64;
    for (size_t c = 0; c < 4; ++c) {
      const __mmask16 m = static_cast<__mmask16>((bits >> (c * 16)) & 0xFFFF);
      if (m == 0) continue;
      __m512i a = _mm512_loadu_si512(base + c * 16);
      _mm512_storeu_si512(base + c * 16, _mm512_mask_add_epi32(a, m, a, ones));
    }
  }
}

/// Gather/add/scatter over 16 postings at a time. A column stores at most
/// one posting per trajectory id, so the 16 local ids are distinct and the
/// scatter is conflict-free — no vpconflictd pass needed (the ROADMAP
/// histogramming hazard does not arise here).
__attribute__((target("avx512f"))) void SparseScatterAvx512(
    const uint16_t* local_ids, const int32_t* counts, uint32_t begin,
    uint32_t end, int32_t* acc) {
  uint32_t p = begin;
  for (; p + 16 <= end; p += 16) {
    const __m256i raw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(local_ids + p));
    const __m512i idx = _mm512_cvtepu16_epi32(raw);
    const __m512i c = _mm512_loadu_si512(counts + p);
    // Masked form with an explicit zero source: the plain gather expands
    // to _mm512_undefined_epi32, which -Wmaybe-uninitialized flags.
    const __m512i g = _mm512_mask_i32gather_epi32(
        _mm512_setzero_si512(), static_cast<__mmask16>(0xFFFF), idx, acc, 4);
    _mm512_i32scatter_epi32(acc, idx, _mm512_add_epi32(g, c), 4);
  }
  for (; p < end; ++p) {
    acc[local_ids[p]] += counts[p];
  }
}

#endif  // defined(EDR_HISTOGRAM_AVX512)

// ---------------------------------------------------------------------------
// Fused side-B kernels: one walk of an id's posting slice serves a whole
// fusion group. The group's neighborhood sums are interleaved query-major
// (`nbr[bin * kMaxFusionGroup + f]`, zero-padded past the group), so each
// posting is one broadcast + min + add over kMaxFusionGroup int32 lanes.
// Padding lanes stay zero (min(count, 0) == 0 for the strictly positive
// counts), and per-lane sums are plain int32 additions, so every body is
// bit-identical to the one-query-at-a-time walk.
// ---------------------------------------------------------------------------

inline void FusedSideBScalar(const int32_t* bins, const int32_t* counts,
                             uint32_t begin, uint32_t end, const int32_t* nbr,
                             int32_t* sb) {
  for (uint32_t e = begin; e < end; ++e) {
    const int32_t* row =
        nbr + static_cast<size_t>(bins[e]) * kMaxFusionGroup;
    const int32_t c = counts[e];
    for (size_t f = 0; f < kMaxFusionGroup; ++f) {
      sb[f] += std::min(c, row[f]);
    }
  }
}

#if defined(EDR_HISTOGRAM_SIMD)

inline void FusedSideBSse2(const int32_t* bins, const int32_t* counts,
                           uint32_t begin, uint32_t end, const int32_t* nbr,
                           int32_t* sb) {
  __m128i s0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sb));
  __m128i s1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sb + 4));
  for (uint32_t e = begin; e < end; ++e) {
    const int32_t* row =
        nbr + static_cast<size_t>(bins[e]) * kMaxFusionGroup;
    const __m128i vc = _mm_set1_epi32(counts[e]);
    s0 = _mm_add_epi32(
        s0, MinI32(vc, _mm_loadu_si128(
                           reinterpret_cast<const __m128i*>(row))));
    s1 = _mm_add_epi32(
        s1, MinI32(vc, _mm_loadu_si128(
                           reinterpret_cast<const __m128i*>(row + 4))));
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(sb), s0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(sb + 4), s1);
}

#endif  // defined(EDR_HISTOGRAM_SIMD)

#if defined(EDR_HISTOGRAM_AVX2)

__attribute__((target("avx2"))) void FusedSideBAvx2(
    const int32_t* bins, const int32_t* counts, uint32_t begin, uint32_t end,
    const int32_t* nbr, int32_t* sb) {
  __m256i vsb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sb));
  for (uint32_t e = begin; e < end; ++e) {
    const __m256i row = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        nbr + static_cast<size_t>(bins[e]) * kMaxFusionGroup));
    const __m256i vc = _mm256_set1_epi32(counts[e]);
    vsb = _mm256_add_epi32(vsb, _mm256_min_epi32(vc, row));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(sb), vsb);
}

#endif  // defined(EDR_HISTOGRAM_AVX2)

#if defined(EDR_HISTOGRAM_AVX512)

/// Two postings per iteration: lanes 0-7 accumulate the even postings,
/// lanes 8-15 the odd ones, folded together at the end. Int32 addition
/// commutes exactly, so the regrouped per-query sums match the sequential
/// walk bit for bit.
__attribute__((target("avx512f"))) void FusedSideBAvx512(
    const int32_t* bins, const int32_t* counts, uint32_t begin, uint32_t end,
    const int32_t* nbr, int32_t* sb) {
  __m512i vsb = _mm512_setzero_si512();
  uint32_t e = begin;
  for (; e + 2 <= end; e += 2) {
    const __m256i ra = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        nbr + static_cast<size_t>(bins[e]) * kMaxFusionGroup));
    const __m256i rb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        nbr + static_cast<size_t>(bins[e + 1]) * kMaxFusionGroup));
    const __m512i row =
        _mm512_inserti64x4(_mm512_castsi256_si512(ra), rb, 1);
    const __m512i vc = _mm512_inserti64x4(
        _mm512_castsi256_si512(_mm256_set1_epi32(counts[e])),
        _mm256_set1_epi32(counts[e + 1]), 1);
    vsb = _mm512_add_epi32(vsb, _mm512_min_epi32(vc, row));
  }
  __m256i acc8 = _mm256_add_epi32(
      _mm512_castsi512_si256(vsb), _mm512_extracti64x4_epi64(vsb, 1));
  acc8 = _mm256_add_epi32(
      acc8, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sb)));
  if (e < end) {
    const __m256i row = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        nbr + static_cast<size_t>(bins[e]) * kMaxFusionGroup));
    const __m256i vc = _mm256_set1_epi32(counts[e]);
    acc8 = _mm256_add_epi32(acc8, _mm256_min_epi32(vc, row));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(sb), acc8);
}

#endif  // defined(EDR_HISTOGRAM_AVX512)

#if defined(EDR_HISTOGRAM_NEON)

inline void FusedSideBNeon(const int32_t* bins, const int32_t* counts,
                           uint32_t begin, uint32_t end, const int32_t* nbr,
                           int32_t* sb) {
  int32x4_t s0 = vld1q_s32(sb);
  int32x4_t s1 = vld1q_s32(sb + 4);
  for (uint32_t e = begin; e < end; ++e) {
    const int32_t* row =
        nbr + static_cast<size_t>(bins[e]) * kMaxFusionGroup;
    const int32x4_t vc = vdupq_n_s32(counts[e]);
    s0 = vaddq_s32(s0, vminq_s32(vc, vld1q_s32(row)));
    s1 = vaddq_s32(s1, vminq_s32(vc, vld1q_s32(row + 4)));
  }
  vst1q_s32(sb, s0);
  vst1q_s32(sb + 4, s1);
}

#endif  // defined(EDR_HISTOGRAM_NEON)

using AddColumnFn = void (*)(const int32_t*, int32_t*, size_t);
using MinCapAccumFn = void (*)(int32_t, const int32_t*, int32_t*, size_t);
using BitmapAccumFn = void (*)(const uint64_t*, size_t, int32_t*);
using SparseScatterFn = void (*)(const uint16_t*, const int32_t*, uint32_t,
                                 uint32_t, int32_t*);
using FusedSideBFn = void (*)(const int32_t*, const int32_t*, uint32_t,
                              uint32_t, const int32_t*, int32_t*);

/// Kernel pair for a dispatch level. Levels whose bodies are not compiled
/// into this build fall back to scalar (ActiveKernelLevel never returns
/// them, but the mapping stays total). All levels compute identical int32
/// results.
AddColumnFn AddColumnFor(KernelLevel level) {
  switch (level) {
#if defined(EDR_HISTOGRAM_AVX512)
    case KernelLevel::kAvx512: return AddColumnAvx512;
#endif
#if defined(EDR_HISTOGRAM_AVX2)
    case KernelLevel::kAvx2: return AddColumnAvx2;
#endif
#if defined(EDR_HISTOGRAM_SIMD)
    case KernelLevel::kSse2: return AddColumnSimd;
#endif
#if defined(EDR_HISTOGRAM_NEON)
    case KernelLevel::kNeon: return AddColumnNeon;
#endif
    default: return AddColumnScalar;
  }
}

MinCapAccumFn MinCapAccumFor(KernelLevel level) {
  switch (level) {
#if defined(EDR_HISTOGRAM_AVX512)
    case KernelLevel::kAvx512: return MinCapAccumAvx512;
#endif
#if defined(EDR_HISTOGRAM_AVX2)
    case KernelLevel::kAvx2: return MinCapAccumAvx2;
#endif
#if defined(EDR_HISTOGRAM_SIMD)
    case KernelLevel::kSse2: return MinCapAccumSimd;
#endif
#if defined(EDR_HISTOGRAM_NEON)
    case KernelLevel::kNeon: return MinCapAccumNeon;
#endif
    default: return MinCapAccumScalar;
  }
}

/// The five sweep kernels of one dispatch level, resolved together once
/// per sweep call. Families without a body at some level (e.g. the SSE2
/// bitmap walk, or the AVX2 scatter, where gathers without scatters lose
/// to the scalar loop) fall back to scalar — every combination computes
/// identical integers.
struct SweepKernels {
  AddColumnFn add_column = AddColumnScalar;
  MinCapAccumFn min_cap_accum = MinCapAccumScalar;
  BitmapAccumFn bitmap_accum = BitmapAccumScalar;
  SparseScatterFn sparse_scatter = SparseScatterScalar;
  FusedSideBFn fused_side_b = FusedSideBScalar;
};

SweepKernels SweepKernelsFor(KernelLevel level) {
  SweepKernels k;
  k.add_column = AddColumnFor(level);
  k.min_cap_accum = MinCapAccumFor(level);
  switch (level) {
#if defined(EDR_HISTOGRAM_AVX512)
    case KernelLevel::kAvx512:
      k.bitmap_accum = BitmapAccumAvx512;
      k.sparse_scatter = SparseScatterAvx512;
      k.fused_side_b = FusedSideBAvx512;
      break;
#endif
#if defined(EDR_HISTOGRAM_AVX2)
    case KernelLevel::kAvx2:
      k.bitmap_accum = BitmapAccumAvx2;
      k.fused_side_b = FusedSideBAvx2;
      break;
#endif
#if defined(EDR_HISTOGRAM_SIMD)
    case KernelLevel::kSse2:
      k.fused_side_b = FusedSideBSse2;
      break;
#endif
#if defined(EDR_HISTOGRAM_NEON)
    case KernelLevel::kNeon:
      k.fused_side_b = FusedSideBNeon;
      break;
#endif
    default:
      break;
  }
  return k;
}

}  // namespace

HistogramGrid HistogramGrid::For(const DatasetStats& stats, double bin_size) {
  HistogramGrid grid;
  // Guard degenerate thresholds: a zero or tiny bin size would blow the
  // grid up (or divide by zero). Clamping the bin size *up* is always
  // sound — matched pairs stay within adjacent bins for any bin size
  // >= epsilon — it only loosens the bound. Cap the grid at ~512 bins
  // per dimension.
  const double range = std::max(stats.max_xy.x - stats.min_xy.x,
                                stats.max_xy.y - stats.min_xy.y);
  bin_size = std::max({bin_size, range / 512.0, 1e-12});
  grid.bin_size = bin_size;
  // One bin of slack on each side so any element within epsilon of the
  // data range still falls in a real (non-clamped) bin.
  grid.min_x = stats.min_xy.x - bin_size;
  grid.min_y = stats.min_xy.y - bin_size;
  grid.nx = static_cast<int>(
                std::ceil((stats.max_xy.x - grid.min_x) / bin_size)) +
            2;
  grid.ny = static_cast<int>(
                std::ceil((stats.max_xy.y - grid.min_y) / bin_size)) +
            2;
  grid.nx = std::max(grid.nx, 1);
  grid.ny = std::max(grid.ny, 1);
  return grid;
}

int HistogramGrid::BinX(double x) const {
  const int b = static_cast<int>(std::floor((x - min_x) / bin_size));
  return std::clamp(b, 0, nx - 1);
}

int HistogramGrid::BinY(double y) const {
  const int b = static_cast<int>(std::floor((y - min_y) / bin_size));
  return std::clamp(b, 0, ny - 1);
}

std::vector<int> BuildHistogram2D(const Trajectory& t,
                                  const HistogramGrid& grid) {
  std::vector<int> h(static_cast<size_t>(grid.NumBins2D()), 0);
  for (const Point2& p : t) {
    h[static_cast<size_t>(grid.BinY(p.y) * grid.nx + grid.BinX(p.x))]++;
  }
  return h;
}

std::vector<int> BuildHistogram1D(const Trajectory& t,
                                  const HistogramGrid& grid, bool use_x) {
  std::vector<int> h(static_cast<size_t>(use_x ? grid.nx : grid.ny), 0);
  for (const Point2& p : t) {
    h[static_cast<size_t>(use_x ? grid.BinX(p.x) : grid.BinY(p.y))]++;
  }
  return h;
}

int HistogramDistance2D(const std::vector<int>& hr, const std::vector<int>& hs,
                        const HistogramGrid& grid) {
  const int nx = grid.nx;
  const int ny = grid.ny;
  return TransportDistance(
      Occupied(hr), Occupied(hs),
      [nx, ny](int bin, const std::function<void(int)>& emit) {
        const int bx = bin % nx;
        const int by = bin / nx;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int x = bx + dx;
            const int y = by + dy;
            if (x >= 0 && x < nx && y >= 0 && y < ny) emit(y * nx + x);
          }
        }
      });
}

int HistogramDistance1D(const std::vector<int>& hr,
                        const std::vector<int>& hs) {
  return TransportDistance(
      Occupied(hr), Occupied(hs),
      [](int bin, const std::function<void(int)>& emit) {
        emit(bin - 1);
        emit(bin);
        emit(bin + 1);
      });
}

namespace {

int SumOf(const std::vector<int>& h) {
  int total = 0;
  for (const int v : h) total += v;
  return total;
}

std::function<void(int, const std::function<void(int)>&)> GridNeighbors(
    const HistogramGrid& grid) {
  const int nx = grid.nx;
  const int ny = grid.ny;
  return [nx, ny](int bin, const std::function<void(int)>& emit) {
    const int bx = bin % nx;
    const int by = bin / nx;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int x = bx + dx;
        const int y = by + dy;
        if (x >= 0 && x < nx && y >= 0 && y < ny) emit(y * nx + x);
      }
    }
  };
}

}  // namespace

int HistogramDistance2DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs,
                            const HistogramGrid& grid) {
  const int longer = std::max(SumOf(hr), SumOf(hs));
  return longer - TransportUpperBound(hr, hs, GridNeighbors(grid));
}

int HistogramDistance1DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs) {
  const int longer = std::max(SumOf(hr), SumOf(hs));
  return longer -
         TransportUpperBound(hr, hs,
                             [](int bin, const std::function<void(int)>& emit) {
                               emit(bin - 1);
                               emit(bin);
                               emit(bin + 1);
                             });
}

const char* HistogramLayoutName(HistogramLayout layout) {
  switch (layout) {
    case HistogramLayout::kAdaptive: return "adaptive";
    case HistogramLayout::kDense: return "dense";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Adaptive per-column storage. A "column" is the value of one bin across
// the whole database; the sweep touches columns block-wise, so every
// layout only needs O(1) entry into the [i0, i0 + len) id range.
// ---------------------------------------------------------------------------

enum ColLayout : uint8_t {
  kColEmpty = 0,   ///< no trajectory occupies the bin; nothing stored
  kColDense = 1,   ///< bin-major int32 column (the PR-2 layout)
  kColBitmap = 2,  ///< every stored count is 1; one bit per id
  kColSparse = 3,  ///< (local id, count) postings grouped by sweep block
};

/// Bitmap words per column.
inline size_t WordsPerColumn(size_t n) { return (n + 63) / 64; }

/// Column-density thresholds of the adaptive heuristic (ALGORITHMS.md §14).
/// Bytes per column: dense 4n; bitmap n/8; blocked-sparse ~6*occ plus the
/// 4*(num_blocks+1) block index. Bitmap wins over postings for all-ones
/// columns above ~n/48 occupancy; dense only pays once a quarter of the
/// database occupies the bin (at which point the streaming SIMD add also
/// beats posting scatter).
constexpr double kBitmapMinDensity = 1.0 / 32.0;
constexpr double kDenseMinDensity = 0.25;

uint8_t ClassifyColumn(HistogramLayout layout, uint32_t occ, int32_t max_count,
                       size_t n) {
  if (layout == HistogramLayout::kDense) return kColDense;
  if (occ == 0) return kColEmpty;
  const double density = static_cast<double>(occ) / static_cast<double>(n);
  if (max_count == 1 && density >= kBitmapMinDensity) return kColBitmap;
  if (density >= kDenseMinDensity) return kColDense;
  return kColSparse;
}

/// Appends `t`'s occupied (bin, count) list in ascending bin order without
/// materializing a dense num_bins-sized scratch histogram — at fine grids
/// (δ = 1) the dense scratch alone would cost O(bins) per trajectory.
void FillOccupied(const Trajectory& t, const HistogramGrid& grid, int mode,
                  std::vector<int>* scratch_bins,
                  std::vector<OccupiedBin>* occ) {
  scratch_bins->clear();
  scratch_bins->reserve(t.size());
  for (const Point2& p : t) {
    int bin;
    switch (mode) {
      case 0: bin = grid.BinY(p.y) * grid.nx + grid.BinX(p.x); break;
      case 1: bin = grid.BinX(p.x); break;
      default: bin = grid.BinY(p.y); break;
    }
    scratch_bins->push_back(bin);
  }
  std::sort(scratch_bins->begin(), scratch_bins->end());
  occ->clear();
  for (size_t i = 0; i < scratch_bins->size();) {
    size_t j = i;
    while (j < scratch_bins->size() &&
           (*scratch_bins)[j] == (*scratch_bins)[i]) {
      ++j;
    }
    occ->push_back({(*scratch_bins)[i], static_cast<int>(j - i)});
    i = j;
  }
}

}  // namespace

HistogramTable::HistogramTable(const TrajectoryDataset& db, double epsilon,
                               Kind kind, int delta, HistogramLayout layout)
    : kind_(kind), delta_(std::max(1, delta)), layout_(layout) {
  grid_ = HistogramGrid::For(db.Stats(), epsilon * delta_);
  {
    // %.17g round-trips doubles exactly, so equal keys <=> equal grids.
    // The storage layout never changes a QueryHistogram, but it is part of
    // the semantic configuration — keying on it guarantees a layout change
    // can never serve a feature cached under another table config.
    char buf[176];
    std::snprintf(buf, sizeof(buf),
                  "hist.%s/grid=%d.%d/%.17g,%.17g,%.17g/layout=%s",
                  kind_ == Kind::k2D ? "2d" : "1d", grid_.nx, grid_.ny,
                  grid_.min_x, grid_.min_y, grid_.bin_size,
                  HistogramLayoutName(layout_));
    feature_key_ = buf;
  }
  totals_.reserve(db.size());
  for (const Trajectory& t : db) {
    totals_.push_back(static_cast<int32_t>(t.size()));
  }
  if (kind_ == Kind::k2D) {
    BuildTable(db, /*mode=*/0, &flat_2d_);
  } else {
    BuildTable(db, /*mode=*/1, &flat_x_);
    BuildTable(db, /*mode=*/2, &flat_y_);
  }
}

void HistogramTable::BuildTable(const TrajectoryDataset& db, int mode,
                                FlatHistograms* flat) const {
  const int nx = mode == 2 ? grid_.ny : grid_.nx;
  const int ny = mode == 0 ? grid_.ny : 1;
  const size_t n = db.size();
  const size_t num_bins = static_cast<size_t>(nx) * static_cast<size_t>(ny);
  flat->nx = nx;
  flat->ny = ny;
  flat->n = n;
  flat->num_blocks = (n + kSweepBlock - 1) / kSweepBlock;

  // Phase 1: occupied lists, parallel over disjoint trajectories.
  std::vector<std::vector<OccupiedBin>> occupied(n);
  ThreadPool::Global().ParallelFor(n, [&](size_t id) {
    thread_local std::vector<int> scratch;
    FillOccupied(db[id], grid_, mode, &scratch, &occupied[id]);
  });

  // Phase 2: column statistics → layout classification.
  std::vector<uint32_t> occ_count(num_bins, 0);
  std::vector<int32_t> col_max(num_bins, 0);
  for (size_t id = 0; id < n; ++id) {
    for (const OccupiedBin& b : occupied[id]) {
      const size_t bin = static_cast<size_t>(b.bin);
      occ_count[bin]++;
      col_max[bin] = std::max(col_max[bin], b.count);
    }
  }
  flat->col_layout.assign(num_bins, kColEmpty);
  flat->col_slot.assign(num_bins, 0);
  uint32_t dense_cols = 0;
  uint32_t bitmap_cols = 0;
  uint32_t sparse_cols = 0;
  size_t sparse_postings = 0;
  for (size_t b = 0; b < num_bins; ++b) {
    const uint8_t lay = ClassifyColumn(layout_, occ_count[b], col_max[b], n);
    flat->col_layout[b] = lay;
    switch (lay) {
      case kColDense: flat->col_slot[b] = dense_cols++; break;
      case kColBitmap: flat->col_slot[b] = bitmap_cols++; break;
      case kColSparse:
        flat->col_slot[b] = sparse_cols++;
        sparse_postings += occ_count[b];
        break;
      default: break;
    }
  }
  const size_t wpc = WordsPerColumn(n);
  flat->dense.assign(static_cast<size_t>(dense_cols) * n, 0);
  flat->bits.assign(static_cast<size_t>(bitmap_cols) * wpc, 0);
  flat->sp_block_offsets.assign(
      static_cast<size_t>(sparse_cols) * (flat->num_blocks + 1), 0);
  flat->sp_local_ids.resize(sparse_postings);
  flat->sp_counts.resize(sparse_postings);

  // Posting ranges per sparse column, prefix-summed in bin (= slot) order.
  std::vector<uint32_t> col_begin(static_cast<size_t>(sparse_cols) + 1, 0);
  {
    uint32_t run = 0;
    for (size_t b = 0; b < num_bins; ++b) {
      if (flat->col_layout[b] == kColSparse) {
        col_begin[flat->col_slot[b]] = run;
        run += occ_count[b];
      }
    }
    col_begin[sparse_cols] = run;
  }

  // Phase 3: id-major stitching. Iterating ids in order makes every
  // column's postings arrive sorted by id and reproduces the exact
  // id-major slices a serial build would write.
  flat->sparse_offsets.assign(n + 1, 0);
  for (size_t id = 0; id < n; ++id) {
    flat->sparse_offsets[id + 1] =
        flat->sparse_offsets[id] + static_cast<uint32_t>(occupied[id].size());
  }
  const size_t total = flat->sparse_offsets[n];
  flat->sparse_bins.resize(total);
  flat->sparse_counts.resize(total);
  std::vector<uint32_t> cursor(col_begin.begin(), col_begin.end() - 1);
  std::vector<uint32_t> sp_global_ids(sparse_postings);
  for (size_t id = 0; id < n; ++id) {
    uint32_t e = flat->sparse_offsets[id];
    for (const OccupiedBin& b : occupied[id]) {
      flat->sparse_bins[e] = b.bin;
      flat->sparse_counts[e] = b.count;
      ++e;
      const size_t bin = static_cast<size_t>(b.bin);
      switch (flat->col_layout[bin]) {
        case kColDense:
          flat->dense[static_cast<size_t>(flat->col_slot[bin]) * n + id] =
              b.count;
          break;
        case kColBitmap:
          flat->bits[static_cast<size_t>(flat->col_slot[bin]) * wpc +
                     id / 64] |= uint64_t{1} << (id & 63);
          break;
        case kColSparse: {
          const uint32_t p = cursor[flat->col_slot[bin]]++;
          sp_global_ids[p] = static_cast<uint32_t>(id);
          flat->sp_counts[p] = b.count;
          break;
        }
        default: break;
      }
    }
  }

  // Phase 4: block index + local ids, sharded over disjoint sparse
  // columns (deterministic regardless of schedule).
  ThreadPool::Global().ParallelFor(sparse_cols, [&](size_t slot) {
    const uint32_t begin = col_begin[slot];
    const uint32_t end = col_begin[slot + 1];
    uint32_t* bo = flat->sp_block_offsets.data() + slot * (flat->num_blocks + 1);
    uint32_t p = begin;
    for (size_t block = 0; block < flat->num_blocks; ++block) {
      bo[block] = p;
      const uint32_t limit =
          static_cast<uint32_t>((block + 1) * kSweepBlock);
      const uint32_t base = static_cast<uint32_t>(block * kSweepBlock);
      while (p < end && sp_global_ids[p] < limit) {
        flat->sp_local_ids[p] =
            static_cast<uint16_t>(sp_global_ids[p] - base);
        ++p;
      }
    }
    bo[flat->num_blocks] = end;
  });
}

HistogramStorageStats HistogramTable::storage_stats() const {
  HistogramStorageStats stats;
  const auto add = [&stats](const FlatHistograms& f) {
    if (f.col_layout.empty()) return;
    stats.columns += f.col_layout.size();
    for (const uint8_t lay : f.col_layout) {
      switch (lay) {
        case kColDense: stats.dense_columns++; break;
        case kColBitmap: stats.bitmap_columns++; break;
        case kColSparse: stats.sparse_columns++; break;
        default: stats.empty_columns++; break;
      }
    }
    stats.column_bytes +=
        f.dense.size() * sizeof(int32_t) + f.bits.size() * sizeof(uint64_t) +
        f.sp_block_offsets.size() * sizeof(uint32_t) +
        f.sp_local_ids.size() * sizeof(uint16_t) +
        f.sp_counts.size() * sizeof(int32_t) +
        f.col_layout.size() * (sizeof(uint8_t) + sizeof(uint32_t));
    stats.dense_equivalent_bytes +=
        f.col_layout.size() * f.n * sizeof(int32_t);
  };
  add(flat_2d_);
  add(flat_x_);
  add(flat_y_);
  return stats;
}

HistogramTable::QueryHistogram HistogramTable::MakeQueryHistogram(
    const Trajectory& query) const {
  QueryHistogram qh;
  qh.total = static_cast<int>(query.size());
  if (kind_ == Kind::k2D) {
    qh.h2d = BuildHistogram2D(query, grid_);
    qh.sparse_2d = SparseOf(qh.h2d);
    qh.nbr_2d = NeighborhoodSums(qh.h2d, grid_.nx, grid_.ny);
  } else {
    qh.hx = BuildHistogram1D(query, grid_, /*use_x=*/true);
    qh.hy = BuildHistogram1D(query, grid_, /*use_x=*/false);
    qh.sparse_x = SparseOf(qh.hx);
    qh.sparse_y = SparseOf(qh.hy);
    qh.nbr_x = NeighborhoodSums(qh.hx, grid_.nx, 1);
    qh.nbr_y = NeighborhoodSums(qh.hy, grid_.ny, 1);
  }
  return qh;
}

namespace {

/// Rebuilds the occupied-bin list of one trajectory from its flat sparse
/// slice (exact-bound path only; the fast paths read the slice in place).
std::vector<OccupiedBin> OccupiedFromSlice(const std::vector<int32_t>& bins,
                                           const std::vector<int32_t>& counts,
                                           uint32_t begin, uint32_t end) {
  std::vector<OccupiedBin> out;
  out.reserve(end - begin);
  for (uint32_t e = begin; e < end; ++e) {
    out.push_back({bins[e], counts[e]});
  }
  return out;
}

std::vector<OccupiedBin> OccupiedFromPairs(
    const std::vector<std::pair<int, int>>& sparse) {
  std::vector<OccupiedBin> out;
  out.reserve(sparse.size());
  for (const auto& [bin, count] : sparse) out.push_back({bin, count});
  return out;
}

}  // namespace

int HistogramTable::LowerBound(const QueryHistogram& query,
                               uint32_t id) const {
  if (kind_ == Kind::k2D) {
    return TransportDistance(
        OccupiedFromPairs(query.sparse_2d),
        OccupiedFromSlice(flat_2d_.sparse_bins, flat_2d_.sparse_counts,
                          flat_2d_.sparse_offsets[id],
                          flat_2d_.sparse_offsets[id + 1]),
        GridNeighbors(grid_));
  }
  // Each per-dimension HD lower-bounds EDR (Corollary 1); take the max.
  const auto path = [](int bin, const std::function<void(int)>& emit) {
    emit(bin - 1);
    emit(bin);
    emit(bin + 1);
  };
  const int dx = TransportDistance(
      OccupiedFromPairs(query.sparse_x),
      OccupiedFromSlice(flat_x_.sparse_bins, flat_x_.sparse_counts,
                        flat_x_.sparse_offsets[id],
                        flat_x_.sparse_offsets[id + 1]),
      path);
  const int dy = TransportDistance(
      OccupiedFromPairs(query.sparse_y),
      OccupiedFromSlice(flat_y_.sparse_bins, flat_y_.sparse_counts,
                        flat_y_.sparse_offsets[id],
                        flat_y_.sparse_offsets[id + 1]),
      path);
  return std::max(dx, dy);
}

namespace {

/// One trajectory's count in one bin column, off the adaptive store. The
/// per-row bound path only; the sweep enters columns block-wise.
int32_t ColumnCountAt(const HistogramTable::FlatHistograms& f, size_t bin,
                      uint32_t id) {
  switch (f.col_layout[bin]) {
    case kColDense:
      return f.dense[static_cast<size_t>(f.col_slot[bin]) * f.n + id];
    case kColBitmap:
      return static_cast<int32_t>(
          (f.bits[static_cast<size_t>(f.col_slot[bin]) * WordsPerColumn(f.n) +
                  id / 64] >>
           (id & 63)) &
          1);
    case kColSparse: {
      const size_t slot = f.col_slot[bin];
      const size_t block = id / kSweepBlock;
      const uint32_t* bo =
          f.sp_block_offsets.data() + slot * (f.num_blocks + 1);
      const uint16_t local =
          static_cast<uint16_t>(id - block * kSweepBlock);
      const uint16_t* lo = f.sp_local_ids.data() + bo[block];
      const uint16_t* hi = f.sp_local_ids.data() + bo[block + 1];
      const uint16_t* it = std::lower_bound(lo, hi, local);
      if (it != hi && *it == local) {
        return f.sp_counts[static_cast<size_t>(it - f.sp_local_ids.data())];
      }
      return 0;
    }
    default:
      return 0;
  }
}

/// One trajectory's linear transport upper bound against the query, off
/// the flat tables: min over the two sides of the relaxation. Shared by
/// the per-row FastLowerBound; the sweep computes identical integers
/// block-wise.
int TransportSideScalar(const std::vector<std::pair<int, int>>& q_sparse,
                        const std::vector<int32_t>& qnbr,
                        const HistogramTable::FlatHistograms& f,
                        uint32_t id) {
  const int nx = f.nx;
  const int ny = f.ny;
  // Side A: query bins against the trajectory's column neighborhood mass.
  int side_a = 0;
  for (const auto& [qbin, qcount] : q_sparse) {
    const int bx = qbin % nx;
    const int by = qbin / nx;
    int32_t reach = 0;
    const int y_lo = by > 0 ? by - 1 : 0;
    const int y_hi = by < ny - 1 ? by + 1 : ny - 1;
    const int x_lo = bx > 0 ? bx - 1 : 0;
    const int x_hi = bx < nx - 1 ? bx + 1 : nx - 1;
    for (int y = y_lo; y <= y_hi; ++y) {
      for (int x = x_lo; x <= x_hi; ++x) {
        reach += ColumnCountAt(f, static_cast<size_t>(y * nx + x), id);
      }
    }
    side_a += std::min(qcount, static_cast<int>(reach));
  }
  // Side B: the trajectory's occupied bins against the query's
  // precomputed neighborhood sums.
  int side_b = 0;
  for (uint32_t e = f.sparse_offsets[id]; e < f.sparse_offsets[id + 1]; ++e) {
    side_b += std::min(f.sparse_counts[e],
                       qnbr[static_cast<size_t>(f.sparse_bins[e])]);
  }
  return std::min(side_a, side_b);
}

}  // namespace

int HistogramTable::FastLowerBound(const QueryHistogram& query,
                                   uint32_t id) const {
  const int longer = std::max(query.total, static_cast<int>(totals_[id]));
  if (kind_ == Kind::k2D) {
    const int transport =
        TransportSideScalar(query.sparse_2d, query.nbr_2d, flat_2d_, id);
    return longer - transport;
  }
  const int tx = TransportSideScalar(query.sparse_x, query.nbr_x, flat_x_, id);
  const int ty = TransportSideScalar(query.sparse_y, query.nbr_y, flat_y_, id);
  // Each per-dimension bound is a valid EDR lower bound; take the max.
  return std::max(longer - tx, longer - ty);
}

namespace {

/// Adds column `bin` over the id block [i0, i0 + len) into `acc`,
/// dispatching on the column's storage layout. i0 is kSweepBlock-aligned,
/// so bitmap reads start on a word boundary and the blocked-sparse block
/// index applies directly. Every layout adds the same integers the dense
/// column would, in a different order — int32 addition commutes, so the
/// accumulator is bit-identical across layouts.
inline void AddColumnBlock(const HistogramTable::FlatHistograms& f,
                           size_t bin, size_t i0, size_t len, int32_t* acc,
                           const SweepKernels& kernels) {
  switch (f.col_layout[bin]) {
    case kColDense:
      kernels.add_column(
          f.dense.data() + static_cast<size_t>(f.col_slot[bin]) * f.n + i0,
          acc, len);
      break;
    case kColBitmap: {
      const uint64_t* words =
          f.bits.data() + static_cast<size_t>(f.col_slot[bin]) *
                              WordsPerColumn(f.n) +
          i0 / 64;
      kernels.bitmap_accum(words, (len + 63) / 64, acc);
      break;
    }
    case kColSparse: {
      const size_t slot = f.col_slot[bin];
      const size_t block = i0 / kSweepBlock;
      const uint32_t* bo =
          f.sp_block_offsets.data() + slot * (f.num_blocks + 1);
      kernels.sparse_scatter(f.sp_local_ids.data(), f.sp_counts.data(),
                             bo[block], bo[block + 1], acc);
      break;
    }
    default:
      break;
  }
}

/// min(side A, side B) of the linear transport bound for every id in the
/// block [i0, i0 + len), len <= kSweepBlock. Side A enters each query
/// bin's neighborhood columns through the per-layout block dispatch (dense
/// columns stream through the `add_column` lanes); side B walks the flat
/// id-major slices.
void TransportBlock(const HistogramTable::FlatHistograms& f,
                    const std::vector<std::pair<int, int>>& q_sparse,
                    const std::vector<int32_t>& qnbr,
                    const SweepKernels& kernels, size_t i0, size_t len,
                    int32_t* out) {
  const int nx = f.nx;
  const int ny = f.ny;
  alignas(64) int32_t acc[kSweepBlock];
  alignas(64) int32_t side_a[kSweepBlock];
  std::fill_n(side_a, len, 0);
  for (const auto& [qbin, qcount] : q_sparse) {
    const int bx = qbin % nx;
    const int by = qbin / nx;
    const int y_lo = by > 0 ? by - 1 : 0;
    const int y_hi = by < ny - 1 ? by + 1 : ny - 1;
    const int x_lo = bx > 0 ? bx - 1 : 0;
    const int x_hi = bx < nx - 1 ? bx + 1 : nx - 1;
    // Skip all-empty neighborhoods outright (adding zeros): at fine grids
    // most of a query's bins touch no occupied column in a given block.
    bool any = false;
    for (int y = y_lo; y <= y_hi && !any; ++y) {
      for (int x = x_lo; x <= x_hi; ++x) {
        if (f.col_layout[static_cast<size_t>(y * nx + x)] != kColEmpty) {
          any = true;
          break;
        }
      }
    }
    if (!any) continue;
    std::fill_n(acc, len, 0);
    for (int y = y_lo; y <= y_hi; ++y) {
      for (int x = x_lo; x <= x_hi; ++x) {
        AddColumnBlock(f, static_cast<size_t>(y * nx + x), i0, len, acc,
                       kernels);
      }
    }
    kernels.min_cap_accum(qcount, acc, side_a, len);
  }
  for (size_t j = 0; j < len; ++j) {
    const size_t id = i0 + j;
    int32_t side_b = 0;
    for (uint32_t e = f.sparse_offsets[id]; e < f.sparse_offsets[id + 1];
         ++e) {
      side_b += std::min(f.sparse_counts[e],
                         qnbr[static_cast<size_t>(f.sparse_bins[e])]);
    }
    out[j] = std::min(side_a[j], side_b);
  }
}

// ---------------------------------------------------------------------------
// Fused sweep plumbing. A fusion group's queries are merged into one
// ascending list of *distinct* bins, so each bin's neighborhood columns are
// accumulated once per block and clamped into every member that occupies
// the bin. Per query, the clamp sequence visits exactly its own bins in
// ascending order — the same subsequence, in the same order, as the
// single-query sweep — and both sides of the bound are int32 sums, so the
// fused pass is bit-identical to F independent sweeps.
// ---------------------------------------------------------------------------

/// One distinct bin of a fusion group. qcount[f] == 0 marks members that
/// do not occupy the bin. `any` caches the (block-independent)
/// empty-neighborhood test.
struct FusedBinEntry {
  int32_t bin = 0;
  bool any = false;
  int32_t qcount[kMaxFusionGroup] = {};
};

/// The cacheable part of one dimension's fused-sweep plan: a pure
/// function of the members' sparse histograms (in order) and the table
/// configuration, so the FusedPlanCache can share it across sweeps that
/// re-fuse the same queries. Immutable once built.
struct FusedPlanData {
  size_t group = 0;
  std::vector<FusedBinEntry> bins;
  /// Query-major interleaved neighborhood sums
  /// (`fused_nbr[bin * kMaxFusionGroup + f]`, zero-padded past the group),
  /// feeding the register-blocked side-B kernels. Left empty — falling
  /// back to per-query lookups — when the grid has more bins than the
  /// table has postings, where the O(bins * group) transpose would cost
  /// more than the walk it accelerates.
  std::vector<int32_t> fused_nbr;
};

/// The per-dimension plan of one fused sweep, shared read-only by every
/// block shard: the cached (or freshly built) data plus this call's
/// per-member neighborhood-sum pointers for the transpose-less fallback.
struct FusedPlan {
  std::shared_ptr<const FusedPlanData> data;
  const std::vector<int32_t>* nbr[kMaxFusionGroup] = {};
};

FusedPlanData BuildFusedPlanData(
    const HistogramTable::FlatHistograms& f,
    const std::vector<const std::vector<std::pair<int, int>>*>& sparse,
    const std::vector<const std::vector<int32_t>*>& nbr) {
  FusedPlanData plan;
  const size_t group = sparse.size();
  plan.group = group;
  struct Item {
    int32_t bin;
    uint32_t f;
    int32_t count;
  };
  std::vector<Item> items;
  for (uint32_t fq = 0; fq < group; ++fq) {
    for (const auto& [bin, count] : *sparse[fq]) {
      items.push_back({bin, fq, count});
    }
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.bin != b.bin ? a.bin < b.bin : a.f < b.f;
  });
  const int nx = f.nx;
  const int ny = f.ny;
  for (size_t i = 0; i < items.size();) {
    FusedBinEntry e;
    e.bin = items[i].bin;
    while (i < items.size() && items[i].bin == e.bin) {
      e.qcount[items[i].f] = items[i].count;
      ++i;
    }
    const int bx = e.bin % nx;
    const int by = e.bin / nx;
    const int y_lo = by > 0 ? by - 1 : 0;
    const int y_hi = by < ny - 1 ? by + 1 : ny - 1;
    const int x_lo = bx > 0 ? bx - 1 : 0;
    const int x_hi = bx < nx - 1 ? bx + 1 : nx - 1;
    for (int y = y_lo; y <= y_hi && !e.any; ++y) {
      for (int x = x_lo; x <= x_hi; ++x) {
        if (f.col_layout[static_cast<size_t>(y * nx + x)] != kColEmpty) {
          e.any = true;
          break;
        }
      }
    }
    plan.bins.push_back(e);
  }
  const size_t num_bins = f.col_layout.size();
  if (num_bins <= f.sparse_bins.size()) {
    plan.fused_nbr.assign(num_bins * kMaxFusionGroup, 0);
    for (uint32_t fq = 0; fq < group; ++fq) {
      const std::vector<int32_t>& src = *nbr[fq];
      for (size_t b = 0; b < num_bins; ++b) {
        plan.fused_nbr[b * kMaxFusionGroup + fq] = src[b];
      }
    }
  }
  return plan;
}

/// TransportBlock for a fusion group: out[f][j] holds member f's
/// min(side A, side B) for id i0 + j.
void TransportBlockFused(const HistogramTable::FlatHistograms& f,
                         const FusedPlan& plan, const SweepKernels& kernels,
                         size_t i0, size_t len,
                         int32_t (*out)[kSweepBlock]) {
  const FusedPlanData& data = *plan.data;
  const size_t group = data.group;
  const int nx = f.nx;
  const int ny = f.ny;
  alignas(64) int32_t acc[kSweepBlock];
  for (size_t fq = 0; fq < group; ++fq) {
    std::fill_n(out[fq], len, 0);
  }
  for (const FusedBinEntry& e : data.bins) {
    if (!e.any) continue;
    const int bx = e.bin % nx;
    const int by = e.bin / nx;
    const int y_lo = by > 0 ? by - 1 : 0;
    const int y_hi = by < ny - 1 ? by + 1 : ny - 1;
    const int x_lo = bx > 0 ? bx - 1 : 0;
    const int x_hi = bx < nx - 1 ? bx + 1 : nx - 1;
    std::fill_n(acc, len, 0);
    for (int y = y_lo; y <= y_hi; ++y) {
      for (int x = x_lo; x <= x_hi; ++x) {
        AddColumnBlock(f, static_cast<size_t>(y * nx + x), i0, len, acc,
                       kernels);
      }
    }
    // The bin's neighborhood mass is accumulated once; every member that
    // occupies it pays only its own clamp — the fused sweep's side-A
    // saving over F independent sweeps.
    for (size_t fq = 0; fq < group; ++fq) {
      if (e.qcount[fq] > 0) {
        kernels.min_cap_accum(e.qcount[fq], acc, out[fq], len);
      }
    }
  }
  for (size_t j = 0; j < len; ++j) {
    const size_t id = i0 + j;
    alignas(32) int32_t sb[kMaxFusionGroup] = {};
    if (!data.fused_nbr.empty()) {
      kernels.fused_side_b(f.sparse_bins.data(), f.sparse_counts.data(),
                           f.sparse_offsets[id], f.sparse_offsets[id + 1],
                           data.fused_nbr.data(), sb);
    } else {
      for (uint32_t e = f.sparse_offsets[id]; e < f.sparse_offsets[id + 1];
           ++e) {
        const size_t bin = static_cast<size_t>(f.sparse_bins[e]);
        const int32_t c = f.sparse_counts[e];
        for (size_t fq = 0; fq < group; ++fq) {
          sb[fq] += std::min(c, (*plan.nbr[fq])[bin]);
        }
      }
    }
    for (size_t fq = 0; fq < group; ++fq) {
      out[fq][j] = std::min(out[fq][j], sb[fq]);
    }
  }
}

}  // namespace

void HistogramTable::SweepBlocks(const QueryHistogram& query,
                                 KernelLevel level, size_t block_begin,
                                 size_t block_end,
                                 std::vector<int>* out) const {
  const size_t n = totals_.size();
  // Lane kernels, resolved once per call so the active level
  // (EDR_FORCE_KERNEL / test pins) is honored dynamically.
  const SweepKernels kernels = SweepKernelsFor(level);
  for (size_t block = block_begin; block < block_end; ++block) {
    const size_t i0 = block * kSweepBlock;
    const size_t len = std::min(kSweepBlock, n - i0);
    if (kind_ == Kind::k2D) {
      alignas(64) int32_t t[kSweepBlock];
      TransportBlock(flat_2d_, query.sparse_2d, query.nbr_2d, kernels, i0,
                     len, t);
      for (size_t j = 0; j < len; ++j) {
        const int longer =
            std::max(query.total, static_cast<int>(totals_[i0 + j]));
        (*out)[i0 + j] = longer - t[j];
      }
    } else {
      alignas(64) int32_t tx[kSweepBlock];
      alignas(64) int32_t ty[kSweepBlock];
      TransportBlock(flat_x_, query.sparse_x, query.nbr_x, kernels, i0, len,
                     tx);
      TransportBlock(flat_y_, query.sparse_y, query.nbr_y, kernels, i0, len,
                     ty);
      for (size_t j = 0; j < len; ++j) {
        const int longer =
            std::max(query.total, static_cast<int>(totals_[i0 + j]));
        (*out)[i0 + j] = std::max(longer - tx[j], longer - ty[j]);
      }
    }
  }
}

void HistogramTable::SweepImpl(const QueryHistogram& query, KernelLevel level,
                               std::vector<int>* out) const {
  const size_t n = totals_.size();
  out->resize(n);
  SweepBlocks(query, level, 0, (n + kSweepBlock - 1) / kSweepBlock, out);
}

void HistogramTable::FastLowerBoundSweep(const QueryHistogram& query,
                                         std::vector<int>* out) const {
  SweepImpl(query, ActiveKernelLevel(), out);
}

void HistogramTable::FastLowerBoundSweepParallel(
    const QueryHistogram& query, std::vector<int>* out,
    const KnnOptions& options) const {
  const unsigned workers = ResolveIntraQueryWorkers(options);
  const size_t n = totals_.size();
  const size_t num_blocks = (n + kSweepBlock - 1) / kSweepBlock;
  if (workers <= 1 || num_blocks <= 1) {
    FastLowerBoundSweep(query, out);
    return;
  }
  // Resolve the level once so every shard of this sweep runs one kernel.
  const KernelLevel level = ActiveKernelLevel();
  out->resize(n);
  // Contiguous block ranges, one per participant; every block writes only
  // its own kSweepBlock-aligned output slice, so the sharded sweep is
  // bit-identical to the sequential one.
  const size_t ranges = std::min<size_t>(workers, num_blocks);
  IntraQueryPool(options).ParallelFor(
      ranges,
      [&](size_t r) {
        const size_t begin = r * num_blocks / ranges;
        const size_t end = (r + 1) * num_blocks / ranges;
        SweepBlocks(query, level, begin, end, out);
      },
      static_cast<unsigned>(ranges));
}

void HistogramTable::FastLowerBoundSweepScalar(const QueryHistogram& query,
                                               std::vector<int>* out) const {
  SweepImpl(query, KernelLevel::kScalar, out);
}

void HistogramTable::SweepFusedChunk(
    const std::vector<const QueryHistogram*>& queries,
    const std::vector<std::vector<int>*>& outs,
    const KnnOptions* options) const {
  const size_t group = queries.size();
  const size_t n = totals_.size();
  const size_t num_blocks = (n + kSweepBlock - 1) / kSweepBlock;
  // Resolve the level once so every shard of this sweep runs one kernel.
  const KernelLevel level = ActiveKernelLevel();
  for (std::vector<int>* out : outs) out->resize(n);

  FusedPlanCache* plan_cache =
      options != nullptr ? options->plan_cache : nullptr;

  // Local member views, canonically ordered when a plan cache is attached:
  // members are stably sorted by sparse-histogram fingerprint so every
  // arrival permutation of the same group maps to one cache key. Each
  // member's bounds are independent of its slot (side-A clamps and side-B
  // sums are per-member), so permuting is bit-identical — certified by
  // fused_sweep_test and plan_cache_test.
  std::vector<const QueryHistogram*> qs(queries);
  std::vector<std::vector<int>*> os(outs);
  if (plan_cache != nullptr && group > 1) {
    std::vector<uint64_t> fp(group);
    for (size_t fq = 0; fq < group; ++fq) {
      if (kind_ == Kind::k2D) {
        fp[fq] = SparseHistogramFingerprint(qs[fq]->sparse_2d);
      } else {
        // Combine the per-dimension fingerprints order-sensitively.
        fp[fq] = SparseHistogramFingerprint(qs[fq]->sparse_x) ^
                 (SparseHistogramFingerprint(qs[fq]->sparse_y) *
                  0x9e3779b97f4a7c15ull);
      }
    }
    std::vector<size_t> order(group);
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&fp](size_t a, size_t b) { return fp[a] < fp[b]; });
    for (size_t i = 0; i < group; ++i) {
      qs[i] = queries[order[i]];
      os[i] = outs[order[i]];
    }
  }

  FusedPlan plan_2d;
  FusedPlan plan_x;
  FusedPlan plan_y;
  {
    // The built plan data is a pure function of the member sparse lists
    // (in canonical order) and the table configuration named by
    // feature_key_ + the plan-kind suffix, which is exactly the plan
    // cache's contract; a cache hit therefore yields a bit-identical plan.
    const auto make_plan = [&](const FlatHistograms& flat,
                               const std::vector<const std::vector<
                                   std::pair<int, int>>*>& sparse,
                               const std::vector<const std::vector<
                                   int32_t>*>& nbr,
                               const char* suffix, FusedPlan* plan) {
      for (size_t fq = 0; fq < group; ++fq) plan->nbr[fq] = nbr[fq];
      if (plan_cache != nullptr) {
        plan->data = plan_cache->GetOrBuild<FusedPlanData>(
            feature_key_ + suffix, sparse,
            [&] { return BuildFusedPlanData(flat, sparse, nbr); });
      } else {
        plan->data = std::make_shared<const FusedPlanData>(
            BuildFusedPlanData(flat, sparse, nbr));
      }
    };
    std::vector<const std::vector<std::pair<int, int>>*> sparse(group);
    std::vector<const std::vector<int32_t>*> nbr(group);
    if (kind_ == Kind::k2D) {
      for (size_t fq = 0; fq < group; ++fq) {
        sparse[fq] = &qs[fq]->sparse_2d;
        nbr[fq] = &qs[fq]->nbr_2d;
      }
      make_plan(flat_2d_, sparse, nbr, "#f2d", &plan_2d);
    } else {
      for (size_t fq = 0; fq < group; ++fq) {
        sparse[fq] = &qs[fq]->sparse_x;
        nbr[fq] = &qs[fq]->nbr_x;
      }
      make_plan(flat_x_, sparse, nbr, "#fx", &plan_x);
      for (size_t fq = 0; fq < group; ++fq) {
        sparse[fq] = &qs[fq]->sparse_y;
        nbr[fq] = &qs[fq]->nbr_y;
      }
      make_plan(flat_y_, sparse, nbr, "#fy", &plan_y);
    }
  }

  const SweepKernels kernels = SweepKernelsFor(level);
  const auto sweep_range = [&](size_t block_begin, size_t block_end) {
    for (size_t block = block_begin; block < block_end; ++block) {
      const size_t i0 = block * kSweepBlock;
      const size_t len = std::min(kSweepBlock, n - i0);
      if (kind_ == Kind::k2D) {
        alignas(64) int32_t t[kMaxFusionGroup][kSweepBlock];
        TransportBlockFused(flat_2d_, plan_2d, kernels, i0, len, t);
        for (size_t fq = 0; fq < group; ++fq) {
          std::vector<int>& out = *os[fq];
          const int total = qs[fq]->total;
          for (size_t j = 0; j < len; ++j) {
            const int longer =
                std::max(total, static_cast<int>(totals_[i0 + j]));
            out[i0 + j] = longer - t[fq][j];
          }
        }
      } else {
        alignas(64) int32_t tx[kMaxFusionGroup][kSweepBlock];
        alignas(64) int32_t ty[kMaxFusionGroup][kSweepBlock];
        TransportBlockFused(flat_x_, plan_x, kernels, i0, len, tx);
        TransportBlockFused(flat_y_, plan_y, kernels, i0, len, ty);
        for (size_t fq = 0; fq < group; ++fq) {
          std::vector<int>& out = *os[fq];
          const int total = qs[fq]->total;
          for (size_t j = 0; j < len; ++j) {
            const int longer =
                std::max(total, static_cast<int>(totals_[i0 + j]));
            out[i0 + j] =
                std::max(longer - tx[fq][j], longer - ty[fq][j]);
          }
        }
      }
    }
  };

  const unsigned workers =
      options != nullptr ? ResolveIntraQueryWorkers(*options) : 1;
  if (workers <= 1 || num_blocks <= 1) {
    sweep_range(0, num_blocks);
    return;
  }
  // Contiguous block ranges exactly like FastLowerBoundSweepParallel:
  // every worker serves the whole group over its own kSweepBlock-aligned
  // output slices, so any worker count is bit-identical.
  const size_t ranges = std::min<size_t>(workers, num_blocks);
  IntraQueryPool(*options).ParallelFor(
      ranges,
      [&](size_t r) {
        sweep_range(r * num_blocks / ranges, (r + 1) * num_blocks / ranges);
      },
      static_cast<unsigned>(ranges));
}

void HistogramTable::FastLowerBoundSweepFused(
    const std::vector<const QueryHistogram*>& queries,
    const std::vector<std::vector<int>*>& outs) const {
  for (size_t begin = 0; begin < queries.size();
       begin += kMaxFusionGroup) {
    const size_t end =
        std::min(queries.size(), begin + kMaxFusionGroup);
    SweepFusedChunk(
        std::vector<const QueryHistogram*>(queries.begin() + begin,
                                           queries.begin() + end),
        std::vector<std::vector<int>*>(outs.begin() + begin,
                                       outs.begin() + end),
        nullptr);
  }
}

void HistogramTable::FastLowerBoundSweepFusedParallel(
    const std::vector<const QueryHistogram*>& queries,
    const std::vector<std::vector<int>*>& outs,
    const KnnOptions& options) const {
  for (size_t begin = 0; begin < queries.size();
       begin += kMaxFusionGroup) {
    const size_t end =
        std::min(queries.size(), begin + kMaxFusionGroup);
    SweepFusedChunk(
        std::vector<const QueryHistogram*>(queries.begin() + begin,
                                           queries.begin() + end),
        std::vector<std::vector<int>*>(outs.begin() + begin,
                                       outs.begin() + end),
        &options);
  }
}

uint64_t HistogramTable::QueryBinSignature(const Trajectory& query) const {
  // splitmix64-style finalizer; the top six bits pick the mask bit, so
  // adjacent bin indices land on uncorrelated bits.
  const auto mix_bit = [](uint64_t v) -> uint64_t {
    v *= 0x9e3779b97f4a7c15ull;
    v ^= v >> 29;
    v *= 0xbf58476d1ce4e5b9ull;
    return 1ull << (v >> 58);
  };
  uint64_t sig = 0;
  for (const Point2& p : query) {
    if (kind_ == Kind::k2D) {
      const uint64_t bin =
          static_cast<uint64_t>(grid_.BinY(p.y)) *
              static_cast<uint64_t>(grid_.nx) +
          static_cast<uint64_t>(grid_.BinX(p.x));
      sig |= mix_bit(bin);
    } else {
      // Disjoint hash namespaces for the x and y subrange bins.
      sig |= mix_bit(static_cast<uint64_t>(grid_.BinX(p.x)) * 2u);
      sig |= mix_bit(static_cast<uint64_t>(grid_.BinY(p.y)) * 2u + 1u);
    }
  }
  return sig;
}

int HistogramTable::LowerBound(const Trajectory& query, uint32_t id) const {
  return LowerBound(MakeQueryHistogram(query), id);
}

}  // namespace edr
