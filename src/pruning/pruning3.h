#ifndef EDR_PRUNING_PRUNING3_H_
#define EDR_PRUNING_PRUNING3_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/trajectory3.h"
#include "query/knn.h"

namespace edr {

/// The pruning framework lifted to three dimensions, making the paper's
/// Section 2 remark — "all the definitions, theorems, and techniques can
/// be extended to more than two dimensions" — executable:
///
///  - the histogram lower bound becomes a transport bound over a 3-D
///    ε-grid with 3x3x3 (Chebyshev-adjacent) neighborhoods, kept sparse
///    because a dense 3-D grid would be large;
///  - the q = 1 mean-value gram filter counts query elements with at
///    least one ε-match (all three coordinates) via a sorted merge join;
///  - both are combined in one lossless k-NN searcher over 3-D data.

/// Sequential-scan baseline under 3-D EDR: exact k nearest neighbors.
KnnResult SequentialScanKnn3(const std::vector<Trajectory3>& db,
                             const Trajectory3& query, size_t k,
                             double epsilon);

/// Lossless k-NN searcher for 3-D trajectories combining the histogram
/// transport bound and the element-match count bound. Ids are positions
/// in the database vector. The database must outlive the searcher and
/// stay unmodified.
class Knn3Searcher {
 public:
  Knn3Searcher(const std::vector<Trajectory3>& db, double epsilon);

  KnnResult Knn(const Trajectory3& query, size_t k) const;

  /// The histogram lower bound for one pair; exposed for tests.
  int HistogramLowerBound(const Trajectory3& query, uint32_t id) const;

  /// The element-match count (q = 1 grams in 3-D) for one pair; exposed
  /// for tests. At least max(m, n) - EDR(query, db[id]) by Theorem 1.
  size_t MatchCount(const Trajectory3& query, uint32_t id) const;

 private:
  /// Sparse 3-D histogram: cell key -> count, plus the trajectory length.
  struct SparseHistogram {
    std::unordered_map<int64_t, int> bins;
    int total = 0;
  };

  int64_t CellKey(const Point3& p) const;
  SparseHistogram BuildHistogram(const Trajectory3& t) const;
  int TransportBound(const SparseHistogram& a,
                     const SparseHistogram& b) const;

  const std::vector<Trajectory3>& db_;
  double epsilon_;
  Point3 grid_min_{0.0, 0.0, 0.0};
  std::vector<SparseHistogram> histograms_;
  std::vector<std::vector<Point3>> sorted_elements_;  // by x, then y, z
};

}  // namespace edr

#endif  // EDR_PRUNING_PRUNING3_H_
