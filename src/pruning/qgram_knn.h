#ifndef EDR_PRUNING_QGRAM_KNN_H_
#define EDR_PRUNING_QGRAM_KNN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "index/bplus_tree.h"
#include "index/rstar_tree.h"
#include "pruning/qgram.h"
#include "query/knn.h"

namespace edr {

/// The four implementations of mean-value Q-gram pruning compared in
/// Figures 7 and 8 of the paper.
enum class QgramVariant {
  kRtree2D,  ///< "PR": R*-tree over 2-D Q-gram means.
  kBtree1D,  ///< "PB": B+-tree over means of the projected x sequence.
  kMerge2D,  ///< "PS2": merge join on sorted 2-D means, no index.
  kMerge1D,  ///< "PS1": merge join on sorted 1-D (x) means, no index.
};

/// Short display name matching the paper ("PR", "PB", "PS2", "PS1").
const char* QgramVariantName(QgramVariant variant);

/// k-NN searcher using the mean-value Q-gram count filter (Section 4.1).
///
/// Build phase: extracts the Q-grams of every database trajectory and
/// stores either their mean value pairs in an R*-tree (PR), the means of
/// the x-projection in a B+-tree (PB), or per-trajectory sorted mean lists
/// for merge joins (PS2/PS1).
///
/// Query phase (the Figure 3 skeleton generalized to all variants):
///   1. Count, for each database trajectory S, how many Q-gram means of
///      the query match at least one mean of S.
///   2. Visit trajectories in descending count order; seed the result with
///      the first k true EDR distances.
///   3. For each remaining S, skip it if its count is below the Theorem 1
///      threshold max(|Q|, |S|) - q + 1 - bestSoFar * q; stop the whole
///      scan once the count drops below the smallest threshold any
///      remaining trajectory could have (Theorem 3 guarantees no false
///      dismissals).
class QgramKnnSearcher {
 public:
  QgramKnnSearcher(const TrajectoryDataset& db, double epsilon, int q,
                   QgramVariant variant);

  /// Answers a k-NN query. Thread-compatible: concurrent calls on distinct
  /// searchers are safe; a single searcher is read-only at query time.
  /// `options` shards the counting and refinement passes over the thread
  /// pool; results are bit-identical for every worker count.
  KnnResult Knn(const Trajectory& query, size_t k,
                const KnnOptions& options = {}) const;

  /// Answers a fusion group of queries with one fused counting pass, then
  /// each member runs the unchanged count-ordered refinement; `results[i]`
  /// is bit-identical to `Knn(*queries[i], k, options)`. The merge-join
  /// variants (PS2/PS1) stream the flat posting arrays once, merge-counting
  /// every trajectory's cache-hot mean slice against all members. The
  /// tree-probe variants (PR/PB) fuse too: probe state (`last_gram` dedup +
  /// counts) is per member, making the shared tree's read-only range
  /// probes re-entrant, and the whole group's probes run in one pass
  /// ordered by probe coordinate so neighboring probes share tree paths.
  /// Counts are probe-order invariant — each (member, gram) is probed
  /// exactly once and deduped against that member's own state — which is
  /// what makes the fused tree pass bit-identical to member-wise calls.
  std::vector<KnnResult> KnnFused(
      const std::vector<const Trajectory*>& queries, size_t k,
      const KnnOptions& options = {}) const;

  /// 64-bit gram-posting signature for the similarity-aware fusion
  /// grouper: each Q-gram mean, quantized to its epsilon-sized cell, sets
  /// one mixed bit. Queries whose grams probe overlapping tree/posting
  /// regions get overlapping signatures. Purely advisory — signatures
  /// influence which queries share a fused pass, never any count or
  /// answer.
  uint64_t FusionFingerprint(const Trajectory& query) const;

  /// Answers a range query (all S with EDR(query, S) <= radius, ascending
  /// distance order) using the Theorem 1 count filter in its original
  /// range form: S is pruned when its matching-gram count falls below
  /// max(|Q|, |S|) - q + 1 - radius * q. Lossless. A nonzero `max_results`
  /// keeps only that many nearest matches, selected with partial selection
  /// instead of a full sort of the result list.
  KnnResult Range(const Trajectory& query, int radius,
                  size_t max_results = 0) const;

  /// Per-trajectory matching-gram counts for a query; exposed for tests
  /// and for the combined searcher. The merge-join variants (PS1/PS2)
  /// count independent per-trajectory slices, so `options` can shard them
  /// over the pool; the tree-probe variants (PR/PB) stay sequential.
  std::vector<size_t> MatchCounts(const Trajectory& query,
                                  const KnnOptions& options = {}) const;

  QgramVariant variant() const { return variant_; }
  int q() const { return q_; }
  std::string name() const;

 private:
  /// Everything after the counting pass, shared by Knn and KnnFused:
  /// descending-count ordering, Theorem-3 pruning, bounded refinement,
  /// stats/trace fill-in.
  KnnResult RefineWithCounts(const Trajectory& query, size_t k,
                             const KnnOptions& options,
                             const std::vector<size_t>& counts,
                             std::shared_ptr<QueryTrace> trace,
                             double filter_seconds) const;

  const TrajectoryDataset& db_;
  double epsilon_;
  int q_;
  QgramVariant variant_;
  /// FeatureCache config key for this searcher's query mean vector —
  /// encodes the dimensionality, sortedness, and q, the only inputs
  /// besides the query itself. PS2's sorted-2D key matches the combined
  /// and LCSS searchers at equal q, so they share cache entries.
  std::string feature_key_;

  // PR: one entry per Q-gram mean, payload = trajectory id.
  std::unique_ptr<RStarTree> rtree_;
  // PB: one entry per projected Q-gram mean, payload = trajectory id.
  std::unique_ptr<BPlusTree> btree_;
  // PS2 / PS1: flat sorted posting arrays of per-trajectory means.
  std::unique_ptr<QgramMeansTable> means_;
};

}  // namespace edr

#endif  // EDR_PRUNING_QGRAM_KNN_H_
