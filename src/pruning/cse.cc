#include "pruning/cse.h"

#include <algorithm>
#include <chrono>

#include "distance/edr_kernel.h"
#include "query/intra_query.h"

namespace edr {

double MaxTriangleViolation(const PairwiseEdrMatrix& matrix) {
  const size_t n = matrix.num_refs();
  double worst = 0.0;
  for (size_t x = 0; x < n; ++x) {
    for (size_t y = 0; y < n; ++y) {
      if (y == x) continue;
      for (size_t z = 0; z < n; ++z) {
        const double violation =
            static_cast<double>(matrix.at(x, static_cast<uint32_t>(z))) -
            static_cast<double>(matrix.at(x, static_cast<uint32_t>(y))) -
            static_cast<double>(matrix.at(y, static_cast<uint32_t>(z)));
        worst = std::max(worst, violation);
      }
    }
  }
  return worst;
}

CseSearcher::CseSearcher(const TrajectoryDataset& db, double epsilon,
                         PairwiseEdrMatrix matrix)
    : db_(db), epsilon_(epsilon), matrix_(std::move(matrix)) {
  shift_ = MaxTriangleViolation(matrix_);
}

KnnResult CseSearcher::Knn(const Trajectory& query, size_t k,
                           const KnnOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  KnnResult out;
  out.stats.db_size = db_.size();
  if (k == 0) return out;
  const EdrKernel kernel = DefaultEdrKernel();

  // Per-slot reference arrays, as in NearTriangleSearcher::Knn: any
  // computed reference distance is a valid prune input, so sharding them
  // only changes how much is pruned, never what is returned.
  const unsigned slots = ResolveIntraQueryWorkers(options);
  std::vector<std::vector<std::pair<uint32_t, double>>> proc(slots);
  for (auto& p : proc) p.reserve(matrix_.num_refs());
  std::vector<size_t> computed(slots, 0);

  const auto refine = [&](unsigned slot, uint32_t id, double threshold,
                          double* dist) {
    std::vector<std::pair<uint32_t, double>>& proc_array = proc[slot];
    double max_prune_dist = 0.0;
    for (const auto& [ref_id, ref_dist] : proc_array) {
      const double bound = ref_dist - matrix_.at(ref_id, id) - shift_;
      max_prune_dist = std::max(max_prune_dist, bound);
    }
    if (max_prune_dist > threshold) return false;

    // Bounded refinement; a lower-bound reference distance in proc_array
    // only weakens (never unsounds) the shifted triangle prune.
    const int bound = EdrBoundFromKthDistance(threshold);
    const int d = EdrDistanceBoundedWith(kernel, ThreadLocalEdrScratch(),
                                         query, db_[id], epsilon_, bound);
    ++computed[slot];
    if (id < matrix_.num_refs() &&
        proc_array.size() < matrix_.num_refs()) {
      proc_array.emplace_back(id, static_cast<double>(d));
    }
    if (d > bound) return false;
    *dist = static_cast<double>(d);
    return true;
  };
  out.neighbors = RefineInDbOrder(db_.size(), k, options, refine);

  const auto stop = std::chrono::steady_clock::now();
  for (const size_t c : computed) out.stats.edr_computed += c;
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  out.stats.refine_seconds = out.stats.elapsed_seconds;
  return out;
}

}  // namespace edr
