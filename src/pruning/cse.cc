#include "pruning/cse.h"

#include <algorithm>
#include <chrono>

#include "distance/edr_kernel.h"
#include "obs/trace.h"
#include "query/intra_query.h"

namespace edr {

double MaxTriangleViolation(const PairwiseEdrMatrix& matrix) {
  const size_t n = matrix.num_refs();
  double worst = 0.0;
  for (size_t x = 0; x < n; ++x) {
    for (size_t y = 0; y < n; ++y) {
      if (y == x) continue;
      for (size_t z = 0; z < n; ++z) {
        const double violation =
            static_cast<double>(matrix.at(x, static_cast<uint32_t>(z))) -
            static_cast<double>(matrix.at(x, static_cast<uint32_t>(y))) -
            static_cast<double>(matrix.at(y, static_cast<uint32_t>(z)));
        worst = std::max(worst, violation);
      }
    }
  }
  return worst;
}

CseSearcher::CseSearcher(const TrajectoryDataset& db, double epsilon,
                         PairwiseEdrMatrix matrix)
    : db_(db), epsilon_(epsilon), matrix_(std::move(matrix)) {
  shift_ = MaxTriangleViolation(matrix_);
}

KnnResult CseSearcher::Knn(const Trajectory& query, size_t k,
                           const KnnOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  KnnResult out;
  out.stats.db_size = db_.size();
  if (k == 0) {
    out.stats.stages.FinalizeNotVisited(db_.size());
    return out;
  }
  const EdrKernel kernel = DefaultEdrKernel();
  std::shared_ptr<QueryTrace> trace = MakeQueryTrace();
  RecordSchedBudget(trace.get(), options);

  // Per-slot reference arrays, as in NearTriangleSearcher::Knn: any
  // computed reference distance is a valid prune input, so sharding them
  // only changes how much is pruned, never what is returned.
  const unsigned slots = ResolveIntraQueryWorkers(options);
  std::vector<std::vector<std::pair<uint32_t, double>>> proc(slots);
  for (auto& p : proc) p.reserve(matrix_.num_refs());
  std::vector<size_t> computed(slots, 0);
  std::vector<StageCounters> slot_stages(slots);
  // Interleaved scan: phase split derived from the summed DP wall time,
  // exactly as in NearTriangleSearcher::Knn.
  struct alignas(64) SlotSeconds {
    double v = 0.0;
  };
  std::vector<SlotSeconds> dp_seconds(slots);

  const auto refine = [&](unsigned slot, uint32_t id, double threshold,
                          double* dist) {
    StageCounters& st = slot_stages[slot];
    st.Bump(&StageCounters::considered);
    std::vector<std::pair<uint32_t, double>>& proc_array = proc[slot];
    double max_prune_dist = 0.0;
    for (const auto& [ref_id, ref_dist] : proc_array) {
      const double bound = ref_dist - matrix_.at(ref_id, id) - shift_;
      max_prune_dist = std::max(max_prune_dist, bound);
    }
    if (max_prune_dist > threshold) {
      st.Bump(&StageCounters::triangle_pruned);
      return false;
    }

    // Bounded refinement; a lower-bound reference distance in proc_array
    // only weakens (never unsounds) the shifted triangle prune.
    std::chrono::steady_clock::time_point dp_start;
    if constexpr (kObsEnabled) dp_start = std::chrono::steady_clock::now();
    const int bound = EdrBoundFromKthDistance(threshold);
    const int d = EdrDistanceBoundedWith(kernel, ThreadLocalEdrScratch(),
                                         query, db_[id], epsilon_, bound);
    if constexpr (kObsEnabled) {
      dp_seconds[slot].v +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        dp_start)
              .count();
    }
    ++computed[slot];
    st.CountDp(query.size(), db_[id].size());
    if (id < matrix_.num_refs() &&
        proc_array.size() < matrix_.num_refs()) {
      proc_array.emplace_back(id, static_cast<double>(d));
    }
    if (d > bound) {
      st.Bump(&StageCounters::dp_early_abandoned);
      return false;
    }
    *dist = static_cast<double>(d);
    return true;
  };
  TraceSpan scan_span(trace.get(), "scan");
  out.neighbors = RefineInDbOrder(db_.size(), k, options, refine,
                                  {trace.get(), scan_span.id()});
  scan_span.End();

  const auto stop = std::chrono::steady_clock::now();
  for (const size_t c : computed) out.stats.edr_computed += c;
  for (const StageCounters& st : slot_stages) out.stats.stages.Add(st);
  out.stats.stages.FinalizeNotVisited(db_.size());
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  if constexpr (kObsEnabled) {
    double dp_total = 0.0;
    for (const SlotSeconds& s : dp_seconds) dp_total += s.v;
    if (trace != nullptr) {
      trace->AddAggregate("dp", dp_total, out.stats.stages.dp_invoked);
    }
    out.stats.refine_seconds = std::min(dp_total, out.stats.elapsed_seconds);
    out.stats.filter_seconds =
        out.stats.elapsed_seconds - out.stats.refine_seconds;
  } else {
    out.stats.refine_seconds = out.stats.elapsed_seconds;
  }
  out.trace = std::move(trace);
  RecordQueryMetrics(out.stats);
  return out;
}

}  // namespace edr
