#include "pruning/cse.h"

#include <algorithm>
#include <chrono>

#include "distance/edr_kernel.h"

namespace edr {

double MaxTriangleViolation(const PairwiseEdrMatrix& matrix) {
  const size_t n = matrix.num_refs();
  double worst = 0.0;
  for (size_t x = 0; x < n; ++x) {
    for (size_t y = 0; y < n; ++y) {
      if (y == x) continue;
      for (size_t z = 0; z < n; ++z) {
        const double violation =
            static_cast<double>(matrix.at(x, static_cast<uint32_t>(z))) -
            static_cast<double>(matrix.at(x, static_cast<uint32_t>(y))) -
            static_cast<double>(matrix.at(y, static_cast<uint32_t>(z)));
        worst = std::max(worst, violation);
      }
    }
  }
  return worst;
}

CseSearcher::CseSearcher(const TrajectoryDataset& db, double epsilon,
                         PairwiseEdrMatrix matrix)
    : db_(db), epsilon_(epsilon), matrix_(std::move(matrix)) {
  shift_ = MaxTriangleViolation(matrix_);
}

KnnResult CseSearcher::Knn(const Trajectory& query, size_t k) const {
  const auto start = std::chrono::steady_clock::now();
  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();

  std::vector<std::pair<uint32_t, double>> proc_array;
  proc_array.reserve(matrix_.num_refs());

  KnnResultList result(k);
  size_t computed = 0;

  for (const Trajectory& s : db_) {
    const double best = result.KthDistance();
    double max_prune_dist = 0.0;
    for (const auto& [ref_id, ref_dist] : proc_array) {
      const double bound =
          ref_dist - matrix_.at(ref_id, s.id()) - shift_;
      max_prune_dist = std::max(max_prune_dist, bound);
    }
    if (max_prune_dist > best) continue;

    // Bounded refinement; a lower-bound reference distance in proc_array
    // only weakens (never unsounds) the shifted triangle prune.
    const double dist = static_cast<double>(
        EdrDistanceBoundedWith(kernel, scratch, query, s, epsilon_,
                               EdrBoundFromKthDistance(best)));
    ++computed;
    if (s.id() < matrix_.num_refs() &&
        proc_array.size() < matrix_.num_refs()) {
      proc_array.emplace_back(s.id(), dist);
    }
    result.Offer(s.id(), dist);
  }

  const auto stop = std::chrono::steady_clock::now();
  KnnResult out;
  out.neighbors = std::move(result).TakeNeighbors();
  out.stats.db_size = db_.size();
  out.stats.edr_computed = computed;
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  return out;
}

}  // namespace edr
