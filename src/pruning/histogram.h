#ifndef EDR_PRUNING_HISTOGRAM_H_
#define EDR_PRUNING_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "core/trajectory.h"
#include "query/knn.h"

namespace edr {

/// The shared binning of the embedding space (Section 4.3): the data range
/// [min, max] of each dimension is divided into equal subranges of width
/// `bin_size` (the matching threshold epsilon, or delta * epsilon for the
/// coarser variants of Corollary 1).
struct HistogramGrid {
  double min_x = 0.0;
  double min_y = 0.0;
  double bin_size = 0.25;
  int nx = 1;  ///< number of bins along x
  int ny = 1;  ///< number of bins along y

  /// Builds a grid covering `stats` with the given bin size. One bin of
  /// slack is added on each side so boundary samples never fall outside.
  static HistogramGrid For(const DatasetStats& stats, double bin_size);

  int BinX(double x) const;
  int BinY(double y) const;
  int NumBins2D() const { return nx * ny; }
};

/// A 2-D trajectory histogram: bin i (= by * nx + bx) counts the elements
/// falling in that cell. The histogram of S changes by at most one unit
/// per EDR edit operation, which is what makes histogram distance a lower
/// bound of EDR (Theorem 6).
std::vector<int> BuildHistogram2D(const Trajectory& t,
                                  const HistogramGrid& grid);

/// Per-dimension 1-D histograms (Corollary 1): element counts over the x
/// (resp. y) subranges only.
std::vector<int> BuildHistogram1D(const Trajectory& t,
                                  const HistogramGrid& grid, bool use_x);

/// Histogram distance HD between two 2-D histograms on the same grid
/// (Definition 4 / Figure 5, strengthened — see below).
///
/// Elements that match under EDR (within epsilon in both dimensions) land
/// in the same or *adjacent* bins (Definition 5's "approximately match":
/// Chebyshev-adjacent cells for a bin size >= epsilon). We compute
///
///   HD = max(m, n) - T*,
///
/// where T* is the maximum transport of histogram mass from HR to HS
/// along approximately-matching bin pairs (a small max-flow). Soundness
/// (the Theorem 6 guarantee HD <= EDR): the zero-cost matched pairs of an
/// optimal edit script form a feasible transport of size M, and each of
/// the remaining max(m, n) - M elements of the longer trajectory needs
/// its own edit operation.
///
/// Note: the paper's Figure 5 algorithm cancels only *residual* counts of
/// adjacent bins in a single pass. That overestimates the distance when
/// matched pairs chain across bins (r1 in b0 ~ s1 in b1, r2 in b1 ~ s2 in
/// b2 leaves residuals two bins apart with EDR = 0) and would introduce
/// false dismissals; the transport formulation handles chains exactly and
/// is never larger than the true EDR.
int HistogramDistance2D(const std::vector<int>& hr, const std::vector<int>& hs,
                        const HistogramGrid& grid);

/// Histogram distance between two 1-D histograms (adjacency = neighboring
/// subranges). Same construction as HistogramDistance2D on a path graph.
int HistogramDistance1D(const std::vector<int>& hr,
                        const std::vector<int>& hs);

/// Fast relaxation of HistogramDistance2D: max(m, n) - U where U is the
/// linear-time transport upper bound
///
///   U = min( sum_b min(HR[b], HS[N(b)]),  sum_b min(HS[b], HR[N(b)]) ),
///
/// with HS[N(b)] the total HS mass in b's same-or-adjacent bins. Since
/// U >= T*, the result never exceeds HistogramDistance2D and is therefore
/// also a valid EDR lower bound — a cheap first-stage filter before the
/// exact max-flow distance.
int HistogramDistance2DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs,
                            const HistogramGrid& grid);

/// 1-D analogue of HistogramDistance2DFast.
int HistogramDistance1DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs);

/// Precomputed histograms for a whole dataset, shared by the histogram
/// searchers and the combined searcher.
///
/// Storage is one flat structure-of-arrays block per dimension, not one
/// vector per trajectory:
///
///  - dense counts live *bin-major* (`dense[bin * n + id]`), so the value
///    of one bin across the whole database is a contiguous int32 column —
///    the layout FastLowerBoundSweep streams over with SIMD;
///  - the occupied (bin, count) lists of all trajectories are concatenated
///    into two parallel flat arrays sliced by per-trajectory offsets, so a
///    database-order scan of the sparse side never chases pointers.
class HistogramTable {
 public:
  enum class Kind {
    k2D,  ///< trajectory histograms ("2HE", "2H2E", ... per delta)
    k1D,  ///< per-dimension histograms ("1HE")
  };

  /// Builds histograms for every trajectory with bin size delta * epsilon.
  /// For Kind::k1D both the x and y histograms are kept and the lower
  /// bound is the max of the two per-dimension HDs (each lower-bounds EDR
  /// by Corollary 1, so their max does too).
  HistogramTable(const TrajectoryDataset& db, double epsilon, Kind kind,
                 int delta = 1);

  /// Lower bound of EDR(query, db[id]) from the histogram embedding.
  int LowerBound(const Trajectory& query, uint32_t id) const;

  /// Precomputes the query-side histogram once; returns an opaque handle.
  /// Each histogram is kept dense (for the exact bound), as a sparse
  /// (bin, count) list, and as the dense *neighborhood-sum* array
  /// `nbr_*[b] = sum of the histogram over b's same-or-adjacent bins`,
  /// which turns the per-bin reachable-mass term of the fast bound into a
  /// single lookup.
  struct QueryHistogram {
    std::vector<int> h2d;
    std::vector<int> hx;
    std::vector<int> hy;
    std::vector<std::pair<int, int>> sparse_2d;
    std::vector<std::pair<int, int>> sparse_x;
    std::vector<std::pair<int, int>> sparse_y;
    std::vector<int32_t> nbr_2d;
    std::vector<int32_t> nbr_x;
    std::vector<int32_t> nbr_y;
    int total = 0;
  };
  QueryHistogram MakeQueryHistogram(const Trajectory& query) const;
  int LowerBound(const QueryHistogram& query, uint32_t id) const;

  /// Linear-time relaxation of LowerBound (never larger, still a valid
  /// EDR lower bound); used as a first-stage filter by the searchers.
  int FastLowerBound(const QueryHistogram& query, uint32_t id) const;

  /// FastLowerBound for the *entire database* in one cache-blocked pass:
  /// `(*out)[id] == FastLowerBound(query, id)` for every id, bit for bit.
  /// The dense side of the bound is evaluated column-wise over the
  /// bin-major block (SSE2-vectorized where available), the sparse side
  /// as a linear scan of the flat posting arrays — this is what HSE/HSR
  /// and the combined searcher consume instead of n per-row calls.
  void FastLowerBoundSweep(const QueryHistogram& query,
                           std::vector<int>* out) const;

  /// FastLowerBoundSweep with its cache blocks sharded over the intra-query
  /// thread pool (options.intra_query_workers participants; 1 = the plain
  /// sequential sweep, no pool touched). Every block writes its own output
  /// range by index, so the result is bit-identical to FastLowerBoundSweep
  /// for any worker count.
  void FastLowerBoundSweepParallel(const QueryHistogram& query,
                                   std::vector<int>* out,
                                   const KnnOptions& options) const;

  /// Portable scalar reference for FastLowerBoundSweep: identical results
  /// on every platform (and the only path when SSE2 is unavailable or
  /// EDR_DISABLE_SIMD is defined). Exposed so tests can certify the SIMD
  /// sweep bit-identical.
  void FastLowerBoundSweepScalar(const QueryHistogram& query,
                                 std::vector<int>* out) const;

  Kind kind() const { return kind_; }
  int delta() const { return delta_; }
  const HistogramGrid& grid() const { return grid_; }
  size_t size() const { return totals_.size(); }

  /// FeatureCache config key for this table's query histograms. Encodes
  /// everything MakeQueryHistogram depends on — the kind and the exact
  /// grid geometry — so two tables with equal keys produce bit-identical
  /// QueryHistograms and may share cache entries across searchers.
  const std::string& feature_key() const { return feature_key_; }

 private:
  /// Flat SoA storage for one histogram dimension (the 2-D grid, or the
  /// x / y subranges). `nx * ny` spans the bin space; 1-D tables use
  /// ny == 1, which makes the shared 3x3-clamped neighborhood enumeration
  /// degenerate to the path neighborhood.
  struct FlatHistograms {
    int nx = 0;
    int ny = 1;
    size_t n = 0;
    std::vector<int32_t> dense;            ///< bin-major: dense[b * n + id]
    std::vector<int32_t> sparse_bins;      ///< concatenated occupied bins
    std::vector<int32_t> sparse_counts;    ///< parallel counts
    std::vector<uint32_t> sparse_offsets;  ///< n + 1 slice boundaries
  };

  void SweepImpl(const QueryHistogram& query, bool use_simd,
                 std::vector<int>* out) const;
  /// Sweeps the kSweepBlock-aligned blocks [block_begin, block_end) into
  /// the already-sized output array.
  void SweepBlocks(const QueryHistogram& query, bool use_simd,
                   size_t block_begin, size_t block_end,
                   std::vector<int>* out) const;

  Kind kind_;
  int delta_;
  HistogramGrid grid_;
  std::string feature_key_;
  FlatHistograms flat_2d_;
  FlatHistograms flat_x_;
  FlatHistograms flat_y_;
  std::vector<int32_t> totals_;
};

}  // namespace edr

#endif  // EDR_PRUNING_HISTOGRAM_H_
