#ifndef EDR_PRUNING_HISTOGRAM_H_
#define EDR_PRUNING_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/cpu.h"
#include "core/dataset.h"
#include "core/trajectory.h"
#include "query/knn.h"

namespace edr {

/// The shared binning of the embedding space (Section 4.3): the data range
/// [min, max] of each dimension is divided into equal subranges of width
/// `bin_size` (the matching threshold epsilon, or delta * epsilon for the
/// coarser variants of Corollary 1).
struct HistogramGrid {
  double min_x = 0.0;
  double min_y = 0.0;
  double bin_size = 0.25;
  int nx = 1;  ///< number of bins along x
  int ny = 1;  ///< number of bins along y

  /// Builds a grid covering `stats` with the given bin size. One bin of
  /// slack is added on each side so boundary samples never fall outside.
  static HistogramGrid For(const DatasetStats& stats, double bin_size);

  int BinX(double x) const;
  int BinY(double y) const;
  int NumBins2D() const { return nx * ny; }
};

/// A 2-D trajectory histogram: bin i (= by * nx + bx) counts the elements
/// falling in that cell. The histogram of S changes by at most one unit
/// per EDR edit operation, which is what makes histogram distance a lower
/// bound of EDR (Theorem 6).
std::vector<int> BuildHistogram2D(const Trajectory& t,
                                  const HistogramGrid& grid);

/// Per-dimension 1-D histograms (Corollary 1): element counts over the x
/// (resp. y) subranges only.
std::vector<int> BuildHistogram1D(const Trajectory& t,
                                  const HistogramGrid& grid, bool use_x);

/// Histogram distance HD between two 2-D histograms on the same grid
/// (Definition 4 / Figure 5, strengthened — see below).
///
/// Elements that match under EDR (within epsilon in both dimensions) land
/// in the same or *adjacent* bins (Definition 5's "approximately match":
/// Chebyshev-adjacent cells for a bin size >= epsilon). We compute
///
///   HD = max(m, n) - T*,
///
/// where T* is the maximum transport of histogram mass from HR to HS
/// along approximately-matching bin pairs (a small max-flow). Soundness
/// (the Theorem 6 guarantee HD <= EDR): the zero-cost matched pairs of an
/// optimal edit script form a feasible transport of size M, and each of
/// the remaining max(m, n) - M elements of the longer trajectory needs
/// its own edit operation.
///
/// Note: the paper's Figure 5 algorithm cancels only *residual* counts of
/// adjacent bins in a single pass. That overestimates the distance when
/// matched pairs chain across bins (r1 in b0 ~ s1 in b1, r2 in b1 ~ s2 in
/// b2 leaves residuals two bins apart with EDR = 0) and would introduce
/// false dismissals; the transport formulation handles chains exactly and
/// is never larger than the true EDR.
int HistogramDistance2D(const std::vector<int>& hr, const std::vector<int>& hs,
                        const HistogramGrid& grid);

/// Histogram distance between two 1-D histograms (adjacency = neighboring
/// subranges). Same construction as HistogramDistance2D on a path graph.
int HistogramDistance1D(const std::vector<int>& hr,
                        const std::vector<int>& hs);

/// Fast relaxation of HistogramDistance2D: max(m, n) - U where U is the
/// linear-time transport upper bound
///
///   U = min( sum_b min(HR[b], HS[N(b)]),  sum_b min(HS[b], HR[N(b)]) ),
///
/// with HS[N(b)] the total HS mass in b's same-or-adjacent bins. Since
/// U >= T*, the result never exceeds HistogramDistance2D and is therefore
/// also a valid EDR lower bound — a cheap first-stage filter before the
/// exact max-flow distance.
int HistogramDistance2DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs,
                            const HistogramGrid& grid);

/// 1-D analogue of HistogramDistance2DFast.
int HistogramDistance1DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs);

/// Storage policy for the per-bin filter columns of a HistogramTable.
///
/// The PR-2 layout kept one dense bin-major int32 block — O(bins * n)
/// memory, which blows up at fine grids (delta = 1 on large coordinate
/// ranges caps out at a ~512x512 grid, i.e. ~n MB per thousand bins).
/// kAdaptive classifies every bin column at build time from its measured
/// density and stores it in the cheapest layout that keeps the
/// cache-blocked column-sweep shape; kDense forces the original all-dense
/// block (baseline for benchmarks and equivalence tests). Both layouts
/// produce bit-identical bounds — the policy is a pure memory/speed knob.
enum class HistogramLayout {
  kAdaptive,
  kDense,
};

/// "adaptive" or "dense".
const char* HistogramLayoutName(HistogramLayout layout);

/// What the per-column stores of one HistogramTable actually hold, for
/// memory accounting and the layout benches.
struct HistogramStorageStats {
  size_t columns = 0;         ///< bin columns across all dimensions
  size_t dense_columns = 0;   ///< stored as dense int32 columns
  size_t bitmap_columns = 0;  ///< near-binary columns stored as bitmaps
  size_t sparse_columns = 0;  ///< blocked-sparse posting columns
  size_t empty_columns = 0;   ///< nothing stored at all
  /// Bytes held by the column stores (dense block + bitmaps + postings +
  /// block index + per-column layout/slot tables).
  size_t column_bytes = 0;
  /// What the all-dense PR-2 block would cost: columns * n * sizeof(int32).
  size_t dense_equivalent_bytes = 0;
};

/// Precomputed histograms for a whole dataset, shared by the histogram
/// searchers and the combined searcher.
///
/// Storage is flat structure-of-arrays per dimension, with the value of
/// one bin across the whole database ("a bin column") kept in one of four
/// layouts chosen per column at build time (HistogramLayout::kAdaptive):
///
///  - *dense* columns stay bin-major int32 (`dense[slot * n + id]`), the
///    layout FastLowerBoundSweep streams over with SIMD;
///  - *bitmap* columns (every stored count is 1) keep one bit per id;
///  - *blocked-sparse* columns keep (local id, count) postings grouped by
///    sweep block, entered O(1) via a per-column block index;
///  - *empty* columns store nothing.
///
/// Independently, the occupied (bin, count) lists of all trajectories are
/// concatenated into two parallel flat arrays sliced by per-trajectory
/// offsets (id-major), so a database-order scan of the sparse side of the
/// bound never chases pointers.
class HistogramTable {
 public:
  enum class Kind {
    k2D,  ///< trajectory histograms ("2HE", "2H2E", ... per delta)
    k1D,  ///< per-dimension histograms ("1HE")
  };

  /// Builds histograms for every trajectory with bin size delta * epsilon.
  /// For Kind::k1D both the x and y histograms are kept and the lower
  /// bound is the max of the two per-dimension HDs (each lower-bounds EDR
  /// by Corollary 1, so their max does too).
  HistogramTable(const TrajectoryDataset& db, double epsilon, Kind kind,
                 int delta = 1,
                 HistogramLayout layout = HistogramLayout::kAdaptive);

  /// Lower bound of EDR(query, db[id]) from the histogram embedding.
  int LowerBound(const Trajectory& query, uint32_t id) const;

  /// Precomputes the query-side histogram once; returns an opaque handle.
  /// Each histogram is kept dense (for the exact bound), as a sparse
  /// (bin, count) list, and as the dense *neighborhood-sum* array
  /// `nbr_*[b] = sum of the histogram over b's same-or-adjacent bins`,
  /// which turns the per-bin reachable-mass term of the fast bound into a
  /// single lookup.
  struct QueryHistogram {
    std::vector<int> h2d;
    std::vector<int> hx;
    std::vector<int> hy;
    std::vector<std::pair<int, int>> sparse_2d;
    std::vector<std::pair<int, int>> sparse_x;
    std::vector<std::pair<int, int>> sparse_y;
    std::vector<int32_t> nbr_2d;
    std::vector<int32_t> nbr_x;
    std::vector<int32_t> nbr_y;
    int total = 0;
  };
  QueryHistogram MakeQueryHistogram(const Trajectory& query) const;
  int LowerBound(const QueryHistogram& query, uint32_t id) const;

  /// 64-bit occupancy signature of the query's histogram bins: each point
  /// maps to its grid bin (both the x and y subrange bins for Kind::k1D,
  /// in disjoint hash namespaces) and sets one mixed bit of the mask.
  /// Queries whose trajectories occupy overlapping bins get overlapping
  /// signatures, so popcount arithmetic on signatures estimates the
  /// shared-bin fraction `s` of a prospective fusion group — the quantity
  /// the similarity-aware grouper maximizes. Purely advisory: signatures
  /// influence which queries share a sweep, never any bound or answer.
  uint64_t QueryBinSignature(const Trajectory& query) const;

  /// Linear-time relaxation of LowerBound (never larger, still a valid
  /// EDR lower bound); used as a first-stage filter by the searchers.
  int FastLowerBound(const QueryHistogram& query, uint32_t id) const;

  /// FastLowerBound for the *entire database* in one cache-blocked pass:
  /// `(*out)[id] == FastLowerBound(query, id)` for every id, bit for bit.
  /// The column side of the bound is evaluated block-wise, dispatching per
  /// bin column on its storage layout — dense columns stream through the
  /// widest SIMD lanes the host offers (AVX-512/AVX2/SSE2/NEON behind
  /// ActiveKernelLevel()), bitmap and blocked-sparse columns scatter into
  /// the same block accumulator — and the id-major side as a linear scan
  /// of the flat posting arrays. This is what HSE/HSR and the combined
  /// searcher consume instead of n per-row calls.
  void FastLowerBoundSweep(const QueryHistogram& query,
                           std::vector<int>* out) const;

  /// FastLowerBoundSweep with its cache blocks sharded over the intra-query
  /// thread pool (options.intra_query_workers participants; 1 = the plain
  /// sequential sweep, no pool touched). Every block writes its own output
  /// range by index, so the result is bit-identical to FastLowerBoundSweep
  /// for any worker count.
  void FastLowerBoundSweepParallel(const QueryHistogram& query,
                                   std::vector<int>* out,
                                   const KnnOptions& options) const;

  /// Portable scalar reference for FastLowerBoundSweep: identical results
  /// on every platform (and the only path when SIMD is unavailable or
  /// EDR_DISABLE_SIMD is defined). Exposed so tests can certify the SIMD
  /// sweep bit-identical.
  void FastLowerBoundSweepScalar(const QueryHistogram& query,
                                 std::vector<int>* out) const;

  /// FastLowerBoundSweep for a *fusion group* of queries in one
  /// cache-blocked database pass: `(*outs[f])[id]` is bit-identical to what
  /// FastLowerBoundSweep(*queries[f], ...) writes, for every group size.
  /// The group shares each sweep block while it is cache-hot: the column
  /// ("side A") neighborhoods are accumulated once per *distinct* bin of
  /// the group and clamped into every member's accumulator (int32 addition
  /// commutes, so the per-query sums are exact), and the id-major posting
  /// walk ("side B") feeds all members through a query-major
  /// register-blocked min-add kernel (AVX-512/AVX2/SSE2/NEON behind
  /// ActiveKernelLevel()). Groups larger than kMaxFusionGroup are chunked.
  void FastLowerBoundSweepFused(
      const std::vector<const QueryHistogram*>& queries,
      const std::vector<std::vector<int>*>& outs) const;

  /// FastLowerBoundSweepFused with its cache blocks sharded over the
  /// intra-query pool, exactly like FastLowerBoundSweepParallel; every
  /// worker serves the whole fusion group over its own block range, so the
  /// result stays bit-identical for any worker count.
  void FastLowerBoundSweepFusedParallel(
      const std::vector<const QueryHistogram*>& queries,
      const std::vector<std::vector<int>*>& outs,
      const KnnOptions& options) const;

  Kind kind() const { return kind_; }
  int delta() const { return delta_; }
  HistogramLayout layout() const { return layout_; }
  const HistogramGrid& grid() const { return grid_; }
  size_t size() const { return totals_.size(); }

  /// Layout census + byte counts of the column stores, summed over every
  /// dimension this table keeps (the 2-D grid, or the x and y subranges).
  HistogramStorageStats storage_stats() const;

  /// FeatureCache config key for this table's query histograms. Encodes
  /// everything MakeQueryHistogram depends on — the kind and the exact
  /// grid geometry — plus the storage-layout policy, so a layout change
  /// can never serve a feature cached under another configuration.
  const std::string& feature_key() const { return feature_key_; }

  /// Flat adaptive storage for one histogram dimension (the 2-D grid, or
  /// the x / y subranges). `nx * ny` spans the bin space; 1-D tables use
  /// ny == 1, which makes the shared 3x3-clamped neighborhood enumeration
  /// degenerate to the path neighborhood. Public only so the sweep's
  /// file-local dispatch helpers can take it; not part of the stable API.
  struct FlatHistograms {
    int nx = 0;
    int ny = 1;
    size_t n = 0;
    size_t num_blocks = 0;  ///< ceil(n / kSweepBlock) sweep blocks

    // Per-column stores (side A of the fast bound). col_layout[b] selects
    // the layout (ColLayout code), col_slot[b] the column's index within
    // that layout's store.
    std::vector<uint8_t> col_layout;
    std::vector<uint32_t> col_slot;
    std::vector<int32_t> dense;     ///< dense cols: dense[slot * n + id]
    std::vector<uint64_t> bits;     ///< bitmap cols: one bit per id
    /// Blocked-sparse cols: postings (local id within block, count) in
    /// ascending id order, entered per block via the block index
    /// sp_block_offsets[slot * (num_blocks + 1) + block].
    std::vector<uint32_t> sp_block_offsets;
    std::vector<uint16_t> sp_local_ids;
    std::vector<int32_t> sp_counts;

    // Id-major occupied lists (side B of the fast bound + exact bound).
    std::vector<int32_t> sparse_bins;      ///< concatenated occupied bins
    std::vector<int32_t> sparse_counts;    ///< parallel counts
    std::vector<uint32_t> sparse_offsets;  ///< n + 1 slice boundaries
  };

 private:
  /// Builds one dimension's flat adaptive table (mode 0 = the 2-D grid,
  /// 1 = x subranges, 2 = y subranges): parallel per-trajectory occupied
  /// lists, sequential column classification + id-major stitching, then a
  /// parallel per-sparse-column block-index pass — deterministic for any
  /// worker count.
  void BuildTable(const TrajectoryDataset& db, int mode,
                  FlatHistograms* flat) const;

  void SweepImpl(const QueryHistogram& query, KernelLevel level,
                 std::vector<int>* out) const;
  /// Sweeps the kSweepBlock-aligned blocks [block_begin, block_end) into
  /// the already-sized output array.
  void SweepBlocks(const QueryHistogram& query, KernelLevel level,
                   size_t block_begin, size_t block_end,
                   std::vector<int>* out) const;
  /// One fused chunk (group size <= kMaxFusionGroup) over an optional
  /// worker count; both fused entry points funnel through here.
  void SweepFusedChunk(const std::vector<const QueryHistogram*>& queries,
                       const std::vector<std::vector<int>*>& outs,
                       const KnnOptions* options) const;

  Kind kind_;
  int delta_;
  HistogramLayout layout_;
  HistogramGrid grid_;
  std::string feature_key_;
  FlatHistograms flat_2d_;
  FlatHistograms flat_x_;
  FlatHistograms flat_y_;
  std::vector<int32_t> totals_;
};

}  // namespace edr

#endif  // EDR_PRUNING_HISTOGRAM_H_
