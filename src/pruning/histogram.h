#ifndef EDR_PRUNING_HISTOGRAM_H_
#define EDR_PRUNING_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/trajectory.h"

namespace edr {

/// The shared binning of the embedding space (Section 4.3): the data range
/// [min, max] of each dimension is divided into equal subranges of width
/// `bin_size` (the matching threshold epsilon, or delta * epsilon for the
/// coarser variants of Corollary 1).
struct HistogramGrid {
  double min_x = 0.0;
  double min_y = 0.0;
  double bin_size = 0.25;
  int nx = 1;  ///< number of bins along x
  int ny = 1;  ///< number of bins along y

  /// Builds a grid covering `stats` with the given bin size. One bin of
  /// slack is added on each side so boundary samples never fall outside.
  static HistogramGrid For(const DatasetStats& stats, double bin_size);

  int BinX(double x) const;
  int BinY(double y) const;
  int NumBins2D() const { return nx * ny; }
};

/// A 2-D trajectory histogram: bin i (= by * nx + bx) counts the elements
/// falling in that cell. The histogram of S changes by at most one unit
/// per EDR edit operation, which is what makes histogram distance a lower
/// bound of EDR (Theorem 6).
std::vector<int> BuildHistogram2D(const Trajectory& t,
                                  const HistogramGrid& grid);

/// Per-dimension 1-D histograms (Corollary 1): element counts over the x
/// (resp. y) subranges only.
std::vector<int> BuildHistogram1D(const Trajectory& t,
                                  const HistogramGrid& grid, bool use_x);

/// Histogram distance HD between two 2-D histograms on the same grid
/// (Definition 4 / Figure 5, strengthened — see below).
///
/// Elements that match under EDR (within epsilon in both dimensions) land
/// in the same or *adjacent* bins (Definition 5's "approximately match":
/// Chebyshev-adjacent cells for a bin size >= epsilon). We compute
///
///   HD = max(m, n) - T*,
///
/// where T* is the maximum transport of histogram mass from HR to HS
/// along approximately-matching bin pairs (a small max-flow). Soundness
/// (the Theorem 6 guarantee HD <= EDR): the zero-cost matched pairs of an
/// optimal edit script form a feasible transport of size M, and each of
/// the remaining max(m, n) - M elements of the longer trajectory needs
/// its own edit operation.
///
/// Note: the paper's Figure 5 algorithm cancels only *residual* counts of
/// adjacent bins in a single pass. That overestimates the distance when
/// matched pairs chain across bins (r1 in b0 ~ s1 in b1, r2 in b1 ~ s2 in
/// b2 leaves residuals two bins apart with EDR = 0) and would introduce
/// false dismissals; the transport formulation handles chains exactly and
/// is never larger than the true EDR.
int HistogramDistance2D(const std::vector<int>& hr, const std::vector<int>& hs,
                        const HistogramGrid& grid);

/// Histogram distance between two 1-D histograms (adjacency = neighboring
/// subranges). Same construction as HistogramDistance2D on a path graph.
int HistogramDistance1D(const std::vector<int>& hr,
                        const std::vector<int>& hs);

/// Fast relaxation of HistogramDistance2D: max(m, n) - U where U is the
/// linear-time transport upper bound
///
///   U = min( sum_b min(HR[b], HS[N(b)]),  sum_b min(HS[b], HR[N(b)]) ),
///
/// with HS[N(b)] the total HS mass in b's same-or-adjacent bins. Since
/// U >= T*, the result never exceeds HistogramDistance2D and is therefore
/// also a valid EDR lower bound — a cheap first-stage filter before the
/// exact max-flow distance.
int HistogramDistance2DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs,
                            const HistogramGrid& grid);

/// 1-D analogue of HistogramDistance2DFast.
int HistogramDistance1DFast(const std::vector<int>& hr,
                            const std::vector<int>& hs);

/// Precomputed histograms for a whole dataset, shared by the histogram
/// searchers and the combined searcher.
class HistogramTable {
 public:
  enum class Kind {
    k2D,  ///< trajectory histograms ("2HE", "2H2E", ... per delta)
    k1D,  ///< per-dimension histograms ("1HE")
  };

  /// Builds histograms for every trajectory with bin size delta * epsilon.
  /// For Kind::k1D both the x and y histograms are kept and the lower
  /// bound is the max of the two per-dimension HDs (each lower-bounds EDR
  /// by Corollary 1, so their max does too).
  HistogramTable(const TrajectoryDataset& db, double epsilon, Kind kind,
                 int delta = 1);

  /// Lower bound of EDR(query, db[id]) from the histogram embedding.
  int LowerBound(const Trajectory& query, uint32_t id) const;

  /// Precomputes the query-side histogram once; returns an opaque handle.
  /// Each histogram is kept both dense (for the exact bound) and as a
  /// sparse (bin, count) list (for the linear fast bound).
  struct QueryHistogram {
    std::vector<int> h2d;
    std::vector<int> hx;
    std::vector<int> hy;
    std::vector<std::pair<int, int>> sparse_2d;
    std::vector<std::pair<int, int>> sparse_x;
    std::vector<std::pair<int, int>> sparse_y;
    int total = 0;
  };
  QueryHistogram MakeQueryHistogram(const Trajectory& query) const;
  int LowerBound(const QueryHistogram& query, uint32_t id) const;

  /// Linear-time relaxation of LowerBound (never larger, still a valid
  /// EDR lower bound); used as a first-stage filter by the searchers.
  int FastLowerBound(const QueryHistogram& query, uint32_t id) const;

  Kind kind() const { return kind_; }
  int delta() const { return delta_; }
  const HistogramGrid& grid() const { return grid_; }

 private:
  Kind kind_;
  int delta_;
  HistogramGrid grid_;
  std::vector<std::vector<int>> h2d_;
  std::vector<std::vector<int>> hx_;
  std::vector<std::vector<int>> hy_;
  std::vector<std::vector<std::pair<int, int>>> sparse_2d_;
  std::vector<std::vector<std::pair<int, int>>> sparse_x_;
  std::vector<std::vector<std::pair<int, int>>> sparse_y_;
  std::vector<int> totals_;
};

}  // namespace edr

#endif  // EDR_PRUNING_HISTOGRAM_H_
