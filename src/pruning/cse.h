#ifndef EDR_PRUNING_CSE_H_
#define EDR_PRUNING_CSE_H_

#include <cstdint>
#include <string>

#include "core/dataset.h"
#include "pruning/near_triangle.h"
#include "query/knn.h"

namespace edr {

/// Constant Shift Embedding (Roth et al., NIPS'02), the alternative the
/// paper *rejects* in Section 4.2, implemented here as an ablation so the
/// rejection can be reproduced quantitatively.
///
/// CSE converts a non-metric distance into one that satisfies the triangle
/// inequality by adding a constant c to every distance:
///   dist'(x, y) = dist(x, y) + c.
/// Triangle pruning on dist' yields the bound
///   EDR(Q, S) >= EDR(Q, R) - EDR(S, R) - c.
///
/// Two caveats the paper raises, both observable with this implementation:
///  1. A c large enough to repair all database triples makes the bound so
///     slack that almost nothing is pruned.
///  2. Queries from outside the database may form triples that violate the
///     inequality even with the database-derived c, so CSE pruning (unlike
///     near-triangle pruning) may introduce false dismissals.
class CseSearcher {
 public:
  /// Derives c from the reference-to-reference submatrix of `matrix`: the
  /// maximum triangle violation max(EDR(x,z) - EDR(x,y) - EDR(y,z)) over
  /// all reference triples (0 if none violate).
  CseSearcher(const TrajectoryDataset& db, double epsilon,
              PairwiseEdrMatrix matrix);

  KnnResult Knn(const Trajectory& query, size_t k,
                const KnnOptions& options = {}) const;

  /// The derived shift constant.
  double shift() const { return shift_; }

  /// Overrides the shift constant. Shrinking c below the derived value
  /// increases pruning but sacrifices the no-false-dismissal guarantee —
  /// the trade-off the paper cites when rejecting CSE ("reducing the
  /// minimum eigenvalue may increase pruning ability, but ... introduce
  /// false dismissals"). Exposed for the ablation benchmarks.
  void set_shift(double shift) { shift_ = shift; }

  std::string name() const { return "CSE"; }

 private:
  const TrajectoryDataset& db_;
  double epsilon_;
  PairwiseEdrMatrix matrix_;
  double shift_ = 0.0;
};

/// The maximum triangle violation over all triples of the first
/// `matrix.num_refs()` trajectories; the minimum constant making every such
/// triple obey the triangle inequality.
double MaxTriangleViolation(const PairwiseEdrMatrix& matrix);

}  // namespace edr

#endif  // EDR_PRUNING_CSE_H_
