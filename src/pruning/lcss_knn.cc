#include "pruning/lcss_knn.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "distance/lcss.h"
#include "pruning/qgram.h"

namespace edr {

LcssKnnSearcher::LcssKnnSearcher(const TrajectoryDataset& db, double epsilon,
                                 LcssFilter filter)
    : db_(db),
      epsilon_(epsilon),
      filter_(filter),
      histograms_(db, epsilon, HistogramTable::Kind::k2D, 1),
      qgram_means_(db, /*q=*/1, /*dims=*/2) {}

KnnResult LcssKnnSearcher::Knn(const Trajectory& query, size_t k) const {
  const auto start = std::chrono::steady_clock::now();
  const size_t m = query.size();

  const bool use_histogram =
      filter_ == LcssFilter::kHistogram || filter_ == LcssFilter::kBoth;
  const bool use_qgram =
      filter_ == LcssFilter::kQgram || filter_ == LcssFilter::kBoth;

  const HistogramTable::QueryHistogram qh =
      use_histogram ? histograms_.MakeQueryHistogram(query)
                    : HistogramTable::QueryHistogram{};
  std::vector<Point2> query_means;
  if (use_qgram) {
    query_means = MeanValueQgrams(query, 1);
    SortMeans(query_means);
  }

  // Distance lower bound from an upper bound `score_cap` on LCSS(Q, S).
  const auto distance_bound = [m](size_t n, long score_cap) {
    const double denom = static_cast<double>(std::min(m, n));
    if (denom == 0.0) return 1.0;
    const double capped =
        std::min(static_cast<double>(score_cap), denom);
    return 1.0 - capped / denom;
  };

  // Visit order: ascending histogram bound (HSR) when available.
  std::vector<double> bounds;
  std::vector<uint32_t> order(db_.size());
  std::iota(order.begin(), order.end(), 0);
  if (use_histogram) {
    std::vector<int> edr_bounds;
    histograms_.FastLowerBoundSweep(qh, &edr_bounds);
    bounds.resize(db_.size());
    for (size_t i = 0; i < db_.size(); ++i) {
      const size_t n = db_[i].size();
      // The sweep returns max(m, n) - U with U >= T* >= LCSS; recover
      // the score cap U (clamped to min(m, n) inside distance_bound).
      const long total = static_cast<long>(std::max(m, n));
      const long transport_cap = total - edr_bounds[i];
      bounds[i] = distance_bound(n, transport_cap);
    }
    std::sort(order.begin(), order.end(), [&bounds](uint32_t a, uint32_t b) {
      return bounds[a] < bounds[b];
    });
  }

  KnnResultList result(k);
  size_t computed = 0;
  for (const uint32_t id : order) {
    const Trajectory& s = db_[id];
    const double best = result.KthDistance();
    if (use_histogram && bounds[id] > best) break;  // Sorted: all later too.
    if (use_qgram) {
      const long count = static_cast<long>(
          qgram_means_.CountMatches2D(query_means, epsilon_, id));
      if (distance_bound(s.size(), count) > best) continue;
    }
    const double dist = LcssDistance(query, s, epsilon_);
    ++computed;
    result.Offer(id, dist);
  }

  const auto stop = std::chrono::steady_clock::now();
  KnnResult out;
  out.neighbors = std::move(result).TakeNeighbors();
  out.stats.db_size = db_.size();
  out.stats.edr_computed = computed;  // True LCSS computations here.
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  return out;
}

std::string LcssKnnSearcher::name() const {
  switch (filter_) {
    case LcssFilter::kNone: return "LCSS-Scan";
    case LcssFilter::kHistogram: return "LCSS-H";
    case LcssFilter::kQgram: return "LCSS-P";
    case LcssFilter::kBoth: return "LCSS-HP";
  }
  return "LCSS-?";
}

}  // namespace edr
