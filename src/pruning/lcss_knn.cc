#include "pruning/lcss_knn.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "distance/lcss.h"
#include "obs/trace.h"
#include "pruning/qgram.h"
#include "query/feature_cache.h"
#include "query/intra_query.h"
#include "query/topk.h"

namespace edr {
namespace {

/// Distance lower bound from an upper bound `score_cap` on LCSS(Q, S) for
/// lengths m (query) and n (candidate).
double LcssDistanceBoundFromCap(size_t m, size_t n, long score_cap) {
  const double denom = static_cast<double>(std::min(m, n));
  if (denom == 0.0) return 1.0;
  const double capped = std::min(static_cast<double>(score_cap), denom);
  return 1.0 - capped / denom;
}

}  // namespace

LcssKnnSearcher::LcssKnnSearcher(const TrajectoryDataset& db, double epsilon,
                                 LcssFilter filter, HistogramLayout layout)
    : db_(db),
      epsilon_(epsilon),
      filter_(filter),
      histograms_(db, epsilon, HistogramTable::Kind::k2D, 1, layout),
      qgram_means_(db, /*q=*/1, /*dims=*/2) {}

KnnResult LcssKnnSearcher::Knn(const Trajectory& query, size_t k,
                               const KnnOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  KnnResult out;
  out.stats.db_size = db_.size();
  if (k == 0) {
    out.stats.stages.FinalizeNotVisited(db_.size());
    return out;
  }
  const size_t m = query.size();
  std::shared_ptr<QueryTrace> trace = MakeQueryTrace();
  RecordSchedBudget(trace.get(), options);
  TraceSpan sweep_span(trace.get(), "bound_sweep");

  const bool use_histogram =
      filter_ == LcssFilter::kHistogram || filter_ == LcssFilter::kBoth;
  const bool use_qgram =
      filter_ == LcssFilter::kQgram || filter_ == LcssFilter::kBoth;

  // Cached under the same keys the EDR searchers use (the table geometry
  // and q=1 sorted means are method-agnostic), so an EDR query warming the
  // cache also warms the LCSS path and vice versa.
  std::shared_ptr<const HistogramTable::QueryHistogram> qh_ptr;
  if (use_histogram) {
    qh_ptr = GetOrBuildFeature<HistogramTable::QueryHistogram>(
        options.feature_cache, histograms_.feature_key(), query,
        [&] { return histograms_.MakeQueryHistogram(query); });
  } else {
    qh_ptr = std::make_shared<const HistogramTable::QueryHistogram>();
  }
  const HistogramTable::QueryHistogram& qh = *qh_ptr;
  std::shared_ptr<const std::vector<Point2>> means_ptr;
  if (use_qgram) {
    means_ptr = GetOrBuildFeature<std::vector<Point2>>(
        options.feature_cache, "qgram.means2d.sorted/q=1", query, [&] {
          std::vector<Point2> m = MeanValueQgrams(query, 1);
          SortMeans(m);
          return m;
        });
  } else {
    means_ptr = std::make_shared<const std::vector<Point2>>();
  }
  const std::vector<Point2>& query_means = *means_ptr;

  // Distance lower bounds from the histogram sweep (sharded over the
  // pool); candidates are later visited in ascending-bound (HSR) order.
  std::vector<double> bounds;
  if (use_histogram) {
    std::vector<int> edr_bounds;
    histograms_.FastLowerBoundSweepParallel(qh, &edr_bounds, options);
    bounds.resize(db_.size());
    for (size_t i = 0; i < db_.size(); ++i) {
      const size_t n = db_[i].size();
      // The sweep returns max(m, n) - U with U >= T* >= LCSS; recover
      // the score cap U (clamped to min(m, n) inside the bound).
      const long total = static_cast<long>(std::max(m, n));
      const long transport_cap = total - edr_bounds[i];
      bounds[i] = LcssDistanceBoundFromCap(m, n, transport_cap);
    }
  }
  sweep_span.End();
  const double filter_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return RefineWithBounds(query, k, options, bounds, query_means,
                          std::move(trace), filter_seconds);
}

std::vector<KnnResult> LcssKnnSearcher::KnnFused(
    const std::vector<const Trajectory*>& queries, size_t k,
    const KnnOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  const size_t group = queries.size();
  std::vector<KnnResult> results(group);
  if (group == 0) return results;
  if (k == 0) {
    for (KnnResult& r : results) {
      r.stats.db_size = db_.size();
      r.stats.stages.FinalizeNotVisited(db_.size());
    }
    return results;
  }
  const bool use_histogram =
      filter_ == LcssFilter::kHistogram || filter_ == LcssFilter::kBoth;
  const bool use_qgram =
      filter_ == LcssFilter::kQgram || filter_ == LcssFilter::kBoth;

  std::vector<std::shared_ptr<QueryTrace>> traces(group);
  std::vector<int32_t> span_ids(group, -1);
  std::vector<std::shared_ptr<const HistogramTable::QueryHistogram>> features(
      group);
  std::vector<std::shared_ptr<const std::vector<Point2>>> mean_features(
      group);
  for (size_t f = 0; f < group; ++f) {
    traces[f] = MakeQueryTrace();
    RecordSchedBudget(traces[f].get(), options);
    if (traces[f] != nullptr) span_ids[f] = traces[f]->Begin("fused_sweep");
    if (use_histogram) {
      features[f] = GetOrBuildFeature<HistogramTable::QueryHistogram>(
          options.feature_cache, histograms_.feature_key(), *queries[f],
          [&] { return histograms_.MakeQueryHistogram(*queries[f]); });
    }
    if (use_qgram) {
      mean_features[f] = GetOrBuildFeature<std::vector<Point2>>(
          options.feature_cache, "qgram.means2d.sorted/q=1", *queries[f],
          [&] {
            std::vector<Point2> m = MeanValueQgrams(*queries[f], 1);
            SortMeans(m);
            return m;
          });
    } else {
      mean_features[f] = std::make_shared<const std::vector<Point2>>();
    }
  }

  // The histogram bound sweep is the only whole-database filter pass;
  // fuse it. The per-member cap -> distance mapping below is the same
  // arithmetic the single-query path applies to its own sweep output.
  std::vector<std::vector<double>> bounds(group);
  if (use_histogram) {
    std::vector<const HistogramTable::QueryHistogram*> qhs(group);
    std::vector<std::vector<int>> edr_bounds(group);
    std::vector<std::vector<int>*> outs(group);
    for (size_t f = 0; f < group; ++f) {
      qhs[f] = features[f].get();
      outs[f] = &edr_bounds[f];
    }
    histograms_.FastLowerBoundSweepFusedParallel(qhs, outs, options);
    for (size_t f = 0; f < group; ++f) {
      const size_t m = queries[f]->size();
      bounds[f].resize(db_.size());
      for (size_t i = 0; i < db_.size(); ++i) {
        const size_t n = db_[i].size();
        const long total = static_cast<long>(std::max(m, n));
        const long transport_cap = total - edr_bounds[f][i];
        bounds[f][i] = LcssDistanceBoundFromCap(m, n, transport_cap);
      }
    }
  }
  for (size_t f = 0; f < group; ++f) {
    if (traces[f] != nullptr) traces[f]->End(span_ids[f]);
  }
  const double filter_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (size_t f = 0; f < group; ++f) {
    results[f] =
        RefineWithBounds(*queries[f], k, options, bounds[f],
                         *mean_features[f], std::move(traces[f]),
                         filter_seconds);
  }
  return results;
}

KnnResult LcssKnnSearcher::RefineWithBounds(
    const Trajectory& query, size_t k, const KnnOptions& options,
    const std::vector<double>& bounds,
    const std::vector<Point2>& query_means, std::shared_ptr<QueryTrace> trace,
    double filter_seconds) const {
  const auto refine_start = std::chrono::steady_clock::now();
  KnnResult out;
  out.stats.db_size = db_.size();
  const size_t m = query.size();
  const bool use_histogram =
      filter_ == LcssFilter::kHistogram || filter_ == LcssFilter::kBoth;
  const bool use_qgram =
      filter_ == LcssFilter::kQgram || filter_ == LcssFilter::kBoth;
  const unsigned slots = ResolveIntraQueryWorkers(options);
  std::vector<size_t> computed(slots, 0);
  std::vector<StageCounters> slot_stages(slots);
  // LcssDistance is always exact (no early abandoning), so refinement
  // never rejects a computed candidate.
  const auto refine = [&](unsigned slot, uint32_t id, double threshold,
                          double* dist) {
    const Trajectory& s = db_[id];
    StageCounters& st = slot_stages[slot];
    st.Bump(&StageCounters::considered);
    if (use_qgram) {
      const long count = static_cast<long>(
          qgram_means_.CountMatches2D(query_means, epsilon_, id));
      if (LcssDistanceBoundFromCap(m, s.size(), count) > threshold) {
        // The score-cap filter is the Q-gram count bound specialized to
        // LCSS, so it shares the qgram_pruned bucket.
        st.Bump(&StageCounters::qgram_pruned);
        return false;
      }
    }
    *dist = LcssDistance(query, s, epsilon_);
    ++computed[slot];
    st.CountDp(query.size(), s.size());
    return true;
  };

  TraceSpan refine_span(trace.get(), "refine");
  const TraceContext tc{trace.get(), refine_span.id()};
  if (use_histogram) {
    std::vector<StreamingOrder<double>::Entry> entries(db_.size());
    for (size_t i = 0; i < db_.size(); ++i) {
      entries[i] = {bounds[i], static_cast<uint32_t>(i)};
    }
    // In sorted order every remaining bound is >= the stopping one.
    const auto stop = [](double key, double threshold) {
      return key > threshold;
    };
    out.neighbors = RefineInKeyOrder<double>(std::move(entries), k, options,
                                             refine, stop, tc);
  } else {
    out.neighbors = RefineInDbOrder(db_.size(), k, options, refine, tc);
  }
  refine_span.End();

  const auto stop_time = std::chrono::steady_clock::now();
  for (const size_t c : computed) out.stats.edr_computed += c;
  for (const StageCounters& st : slot_stages) out.stats.stages.Add(st);
  out.stats.stages.FinalizeNotVisited(db_.size());
  out.stats.filter_seconds = filter_seconds;
  out.stats.refine_seconds =
      std::chrono::duration<double>(stop_time - refine_start).count();
  out.stats.elapsed_seconds =
      out.stats.filter_seconds + out.stats.refine_seconds;
  out.trace = std::move(trace);
  RecordQueryMetrics(out.stats);
  return out;
}

std::string LcssKnnSearcher::name() const {
  switch (filter_) {
    case LcssFilter::kNone: return "LCSS-Scan";
    case LcssFilter::kHistogram: return "LCSS-H";
    case LcssFilter::kQgram: return "LCSS-P";
    case LcssFilter::kBoth: return "LCSS-HP";
  }
  return "LCSS-?";
}

}  // namespace edr
