#ifndef EDR_PRUNING_COMBINED_H_
#define EDR_PRUNING_COMBINED_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "pruning/histogram.h"
#include "pruning/near_triangle.h"
#include "pruning/qgram.h"
#include "query/knn.h"

namespace edr {

/// The three orthogonal pruning techniques of Section 4, combinable in any
/// order (Section 4.4).
enum class PruneStep {
  kHistogram,     ///< histogram lower bound ("H")
  kQgram,         ///< mean-value Q-gram count filter, merge-join form ("P")
  kNearTriangle,  ///< near triangle inequality ("N")
};

/// Configuration of a combined searcher.
struct CombinedOptions {
  /// Application order; the paper's best (Figure 11) is H, then P, then N:
  /// cheap high-power filters first leave fewer candidates for the rest.
  std::array<PruneStep, 3> order = {PruneStep::kHistogram, PruneStep::kQgram,
                                    PruneStep::kNearTriangle};
  /// 2-D trajectory histograms ("2HPN") or per-dimension 1-D histograms
  /// ("1HPN", the overall winner in Figures 12-13).
  HistogramTable::Kind histogram_kind = HistogramTable::Kind::k2D;
  int histogram_delta = 1;
  /// Column storage policy of the histogram table (pure memory/speed knob;
  /// results are identical across layouts).
  HistogramLayout histogram_layout = HistogramLayout::kAdaptive;
  /// Q-gram size; the experiments pick the merge-join PS2 filter with
  /// q = 1 (Section 5.4), the best stand-alone Q-gram configuration.
  int q = 1;
  /// Reference-trajectory budget for near-triangle pruning.
  size_t max_triangle = 400;
  /// When the histogram filter runs first, visit candidates in ascending
  /// histogram-bound order (the HSR strategy adopted by Section 5.4's
  /// combined method). Disable to scan in database order regardless, which
  /// makes the pruning power identical across all six filter orders (the
  /// Figure 11 setting).
  bool sorted_histogram_scan = true;
};

/// k-NN searcher combining histogram, Q-gram, and near-triangle pruning
/// (the Figure 6 skeleton, generalized to all six application orders).
///
/// When histogram pruning is the first step, candidates are visited in
/// ascending histogram-distance order (the HSR strategy chosen for the
/// combined method in Section 5.4) and the scan stops at the first bound
/// exceeding the k-th distance; otherwise candidates are visited in
/// database order and every filter is evaluated lazily.
///
/// All three filters are lossless, so any order returns exactly the
/// sequential-scan answer; order only changes the running time.
class CombinedKnnSearcher {
 public:
  /// Builds all filter structures, including the reference columns of the
  /// pairwise EDR matrix (offline preprocessing, as in the paper).
  CombinedKnnSearcher(const TrajectoryDataset& db, double epsilon,
                      const CombinedOptions& options);

  /// Variant sharing a pre-built pairwise matrix across searchers.
  CombinedKnnSearcher(const TrajectoryDataset& db, double epsilon,
                      const CombinedOptions& options,
                      PairwiseEdrMatrix matrix);

  /// `options` shards the bound sweep and refinement over the thread pool;
  /// results are bit-identical for every worker count.
  KnnResult Knn(const Trajectory& query, size_t k,
                const KnnOptions& options = {}) const;

  /// Answers a fusion group of queries with one cache-blocked pass over
  /// the histogram table (the only whole-database filter sweep the
  /// combined searcher runs up front — Q-gram counts and near-triangle
  /// bounds are evaluated lazily per candidate and stay per-query).
  /// `results[i]` is bit-identical to `Knn(*queries[i], k, options)`.
  std::vector<KnnResult> KnnFused(
      const std::vector<const Trajectory*>& queries, size_t k,
      const KnnOptions& options = {}) const;

  /// Occupied-bin signature for the similarity-aware fusion grouper,
  /// delegated to the histogram table (the structure the fused sweep
  /// shares). Purely advisory.
  uint64_t FusionFingerprint(const Trajectory& query) const {
    return histograms_.QueryBinSignature(query);
  }

  /// Range query combining all three filters against the fixed `radius`
  /// bound; with sorted histogram scanning the scan stops at the first
  /// bound above the radius. Lossless. A nonzero `max_results` keeps only
  /// that many nearest matches via partial selection instead of a full
  /// sort of the result list.
  KnnResult Range(const Trajectory& query, int radius,
                  size_t max_results = 0) const;

  /// e.g. "2HPN", "1HPN", "2PNH" — histogram kind prefix plus the order.
  std::string name() const;

  const CombinedOptions& options() const { return options_; }

 private:
  /// The per-query tail shared by Knn and KnnFused: the lazy filter chain
  /// over precomputed histogram bounds, bounded refinement, stats/trace.
  KnnResult RefineWithBounds(const Trajectory& query, size_t k,
                             const KnnOptions& options,
                             const std::vector<int>& bounds,
                             const std::vector<Point2>& query_means,
                             std::shared_ptr<QueryTrace> trace,
                             double filter_seconds) const;

  const TrajectoryDataset& db_;
  double epsilon_;
  CombinedOptions options_;
  HistogramTable histograms_;
  QgramMeansTable qgram_means_;  // flat sorted per-trajectory Q-gram means
  PairwiseEdrMatrix matrix_;
};

/// All six orderings of {H, P, N}, for the Figure 11 sweep.
std::vector<std::array<PruneStep, 3>> AllPruneOrders();

/// One-letter code of a step ("H", "P", "N").
char PruneStepCode(PruneStep step);

}  // namespace edr

#endif  // EDR_PRUNING_COMBINED_H_
