#ifndef EDR_PRUNING_QGRAM_H_
#define EDR_PRUNING_QGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/trajectory.h"

namespace edr {

/// Mean value pairs of all Q-grams of size `q` of a trajectory.
///
/// A Q-gram of a trajectory is a window of q consecutive elements
/// (Section 4.1); its mean value pair is the per-dimension average. By
/// Theorem 2, if two Q-grams match element-wise (Definition 3) then their
/// mean value pairs match within the same threshold — so storing only the
/// means loses no pruning soundness while collapsing a 2q-dimensional
/// object to two dimensions. Returns an empty vector when q exceeds the
/// trajectory length.
std::vector<Point2> MeanValueQgrams(const Trajectory& t, int q);

/// Mean values of all Q-grams of the projected one-dimensional sequence
/// (x when `use_x`, else y). Theorem 4 transfers the count bound to
/// projections, enabling a plain B+-tree index.
std::vector<double> MeanValueQgrams1D(const Trajectory& t, int q, bool use_x);

/// The Q-gram count filter (Theorem 1 adapted in Theorems 3/4): if
/// EDR(R, S) <= k then R and S share at least
///
///   p = max(m, n) - q + 1 - k * q
///
/// common Q-grams. Returns p (possibly negative, in which case the filter
/// cannot prune).
long QgramCountThreshold(size_t m, size_t n, int q, long k);

/// Number of Q-gram means of `query_means` that match at least one entry
/// of `data_means`, both sorted ascending by x (ties by y). This
/// upper-bounds the number of common Q-grams in the Theorem 1 sense — a
/// surviving (unedited) query gram matches the corresponding data gram
/// element-wise, hence its mean matches — so comparing it against
/// QgramCountThreshold never causes a false dismissal.
size_t CountMatchingMeans2D(const std::vector<Point2>& query_means,
                            const std::vector<Point2>& data_means,
                            double epsilon);

/// One-dimensional analogue of CountMatchingMeans2D; both inputs sorted
/// ascending.
size_t CountMatchingMeans1D(const std::vector<double>& query_means,
                            const std::vector<double>& data_means,
                            double epsilon);

/// Sorts means into the order expected by CountMatchingMeans2D.
void SortMeans(std::vector<Point2>& means);

/// Per-trajectory sorted Q-gram mean lists for a whole dataset, stored as
/// flat posting arrays: every trajectory's sorted means are concatenated
/// into contiguous parallel buffers (`xs_` / `ys_`) sliced by n + 1
/// offsets, instead of one heap-allocated vector per trajectory. A
/// database-order counting pass (MatchCounts in the PS1/PS2 searchers, the
/// "P" step of the combined searcher, the LCSS count bound) then streams
/// one flat array front to back.
///
/// The count kernels mirror CountMatchingMeans2D/1D exactly — the same
/// query means matched against the same sorted data means — but advance
/// the merge window by *galloping* (exponential probe + binary search), so
/// a query mean far past the window costs O(log gap) rather than O(gap).
class QgramMeansTable {
 public:
  /// Builds the table over every trajectory of `db`. `dims` == 2 stores
  /// (x, y) mean pairs sorted by x then y; `dims` == 1 stores means of the
  /// x-projection sorted ascending (Theorem 4), leaving ys() empty.
  QgramMeansTable(const TrajectoryDataset& db, int q, int dims);

  size_t size() const { return offsets_.size() - 1; }
  int dims() const { return dims_; }

  /// Number of means stored for trajectory `id`.
  size_t count(uint32_t id) const {
    return offsets_[id + 1] - offsets_[id];
  }

  /// CountMatchingMeans2D(query_means, <means of id>, epsilon), off the
  /// flat slice; `query_means` must be sorted with SortMeans.
  size_t CountMatches2D(const std::vector<Point2>& query_means,
                        double epsilon, uint32_t id) const;

  /// CountMatchingMeans1D analogue; `query_means` sorted ascending.
  size_t CountMatches1D(const std::vector<double>& query_means,
                        double epsilon, uint32_t id) const;

  /// Fused merge-count: one visit of trajectory `id`'s posting slice
  /// serves a whole fusion group — `counts[f]` is bit-identical to
  /// CountMatches2D(*query_means[f], epsilon, id). Each member's gallop /
  /// window walk is independent, so fusing only changes *when* the slice
  /// is streamed (once, while cache-hot, for all members) and never what
  /// any member counts.
  void CountMatchesFused2D(
      const std::vector<const std::vector<Point2>*>& query_means,
      double epsilon, uint32_t id, size_t* counts) const;

  /// 1-D analogue of CountMatchesFused2D.
  void CountMatchesFused1D(
      const std::vector<const std::vector<double>*>& query_means,
      double epsilon, uint32_t id, size_t* counts) const;

 private:
  int dims_;
  std::vector<double> xs_;
  std::vector<double> ys_;  ///< parallel to xs_; empty when dims_ == 1
  std::vector<uint32_t> offsets_;
};

}  // namespace edr

#endif  // EDR_PRUNING_QGRAM_H_
