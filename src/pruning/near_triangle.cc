#include "pruning/near_triangle.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "distance/edr_kernel.h"
#include "obs/trace.h"
#include "query/intra_query.h"
#include "query/thread_pool.h"
#include "query/topk.h"

namespace edr {

PairwiseEdrMatrix PairwiseEdrMatrix::Build(const TrajectoryDataset& db,
                                           double epsilon, size_t num_refs) {
  PairwiseEdrMatrix m;
  m.num_refs_ = std::min(num_refs, db.size());
  m.db_size_ = db.size();
  m.distances_.assign(m.num_refs_ * m.db_size_, 0);
  // Matrix entries feed the near-triangle prune bound in both directions,
  // so they must be exact — no early abandoning here, only the fast kernel.
  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  for (size_t r = 0; r < m.num_refs_; ++r) {
    for (size_t s = 0; s < m.db_size_; ++s) {
      if (s < r) {
        // EDR is symmetric; reuse the transposed entry.
        m.distances_[r * m.db_size_ + s] = m.distances_[s * m.db_size_ + r];
      } else if (s == r) {
        m.distances_[r * m.db_size_ + s] = 0;
      } else {
        m.distances_[r * m.db_size_ + s] =
            EdrDistanceWith(kernel, scratch, db[r], db[s], epsilon);
      }
    }
  }
  return m;
}

PairwiseEdrMatrix PairwiseEdrMatrix::BuildParallel(const TrajectoryDataset& db,
                                                   double epsilon,
                                                   size_t num_refs,
                                                   unsigned threads) {
  PairwiseEdrMatrix m;
  m.num_refs_ = std::min(num_refs, db.size());
  m.db_size_ = db.size();
  m.distances_.assign(m.num_refs_ * m.db_size_, 0);
  if (m.num_refs_ == 0) return m;

  // Each pool item fills one whole row; since s >= r entries are computed
  // directly (no transposed reuse across rows), results are identical to
  // the sequential Build. The persistent pool workers keep their
  // ThreadLocalEdrScratch buffers warm across rows and across builds.
  const EdrKernel kernel = DefaultEdrKernel();
  ThreadPool::Global().ParallelFor(
      m.num_refs_,
      [&](size_t r) {
        EdrScratch& scratch = ThreadLocalEdrScratch();
        for (size_t s = 0; s < m.db_size_; ++s) {
          m.distances_[r * m.db_size_ + s] =
              s == r ? 0
                     : EdrDistanceWith(kernel, scratch, db[r], db[s],
                                       epsilon);
        }
      },
      threads);
  return m;
}

PairwiseEdrMatrix PairwiseEdrMatrix::FromParts(size_t num_refs,
                                               size_t db_size,
                                               std::vector<int> distances) {
  PairwiseEdrMatrix m;
  m.num_refs_ = num_refs;
  m.db_size_ = db_size;
  m.distances_ = std::move(distances);
  return m;
}

NearTriangleSearcher::NearTriangleSearcher(const TrajectoryDataset& db,
                                           double epsilon,
                                           size_t max_triangle)
    : db_(db),
      epsilon_(epsilon),
      matrix_(PairwiseEdrMatrix::Build(db, epsilon, max_triangle)) {}

NearTriangleSearcher::NearTriangleSearcher(const TrajectoryDataset& db,
                                           double epsilon,
                                           PairwiseEdrMatrix matrix)
    : db_(db), epsilon_(epsilon), matrix_(std::move(matrix)) {}

KnnResult NearTriangleSearcher::Knn(const Trajectory& query, size_t k,
                                    const KnnOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  KnnResult out;
  out.stats.db_size = db_.size();
  if (k == 0) {
    out.stats.stages.FinalizeNotVisited(db_.size());
    return out;
  }
  const EdrKernel kernel = DefaultEdrKernel();
  std::shared_ptr<QueryTrace> trace = MakeQueryTrace();
  RecordSchedBudget(trace.get(), options);

  // procArray: references (ids < num_refs) whose distance to the query has
  // been computed, with that distance. A bounded-refinement value may be a
  // lower bound on EDR(Q, ref); substituting it into the Figure 4 prune
  // bound only shrinks the bound, so pruning stays lossless (it just
  // prunes a little less than with the exact reference distance). Each
  // worker slot accumulates its own array — a reference distance is a
  // valid prune input regardless of which candidates it is applied to, so
  // per-slot arrays keep pruning sound while the deterministic merge keeps
  // results schedule-independent.
  const unsigned slots = ResolveIntraQueryWorkers(options);
  std::vector<std::vector<std::pair<uint32_t, double>>> proc(slots);
  for (auto& p : proc) p.reserve(matrix_.num_refs());
  std::vector<size_t> computed(slots, 0);
  std::vector<StageCounters> slot_stages(slots);
  // Per-slot DP wall time. Filter and refinement interleave in this scan,
  // so the phase split is derived here: refine = summed DP time, filter =
  // the rest. One cache line per slot — the accumulator is written after
  // every DP.
  struct alignas(64) SlotSeconds {
    double v = 0.0;
  };
  std::vector<SlotSeconds> dp_seconds(slots);

  const auto refine = [&](unsigned slot, uint32_t id, double threshold,
                          double* dist) {
    const Trajectory& s = db_[id];
    StageCounters& st = slot_stages[slot];
    st.Bump(&StageCounters::considered);
    // Lower-bound EDR(Q, S) via every reference with a known distance
    // (Figure 4, lines 2-4).
    std::vector<std::pair<uint32_t, double>>& proc_array = proc[slot];
    double max_prune_dist = 0.0;
    for (const auto& [ref_id, ref_dist] : proc_array) {
      const double bound = ref_dist - matrix_.at(ref_id, id) -
                           static_cast<double>(s.size());
      max_prune_dist = std::max(max_prune_dist, bound);
    }
    if (max_prune_dist > threshold) {  // No false dismissal.
      st.Bump(&StageCounters::triangle_pruned);
      return false;
    }

    std::chrono::steady_clock::time_point dp_start;
    if constexpr (kObsEnabled) dp_start = std::chrono::steady_clock::now();
    const int bound = EdrBoundFromKthDistance(threshold);
    const int d = EdrDistanceBoundedWith(kernel, ThreadLocalEdrScratch(),
                                         query, s, epsilon_, bound);
    if constexpr (kObsEnabled) {
      dp_seconds[slot].v +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        dp_start)
              .count();
    }
    ++computed[slot];
    st.CountDp(query.size(), s.size());
    if (id < matrix_.num_refs() &&
        proc_array.size() < matrix_.num_refs()) {
      proc_array.emplace_back(id, static_cast<double>(d));
    }
    if (d > bound) {
      st.Bump(&StageCounters::dp_early_abandoned);
      return false;
    }
    *dist = static_cast<double>(d);
    return true;
  };
  TraceSpan scan_span(trace.get(), "scan");
  out.neighbors = RefineInDbOrder(db_.size(), k, options, refine,
                                  {trace.get(), scan_span.id()});
  scan_span.End();

  const auto stop = std::chrono::steady_clock::now();
  for (const size_t c : computed) out.stats.edr_computed += c;
  for (const StageCounters& st : slot_stages) out.stats.stages.Add(st);
  out.stats.stages.FinalizeNotVisited(db_.size());
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  if constexpr (kObsEnabled) {
    double dp_total = 0.0;
    for (const SlotSeconds& s : dp_seconds) dp_total += s.v;
    if (trace != nullptr) {
      trace->AddAggregate("dp", dp_total, out.stats.stages.dp_invoked);
    }
    out.stats.refine_seconds = std::min(dp_total, out.stats.elapsed_seconds);
    out.stats.filter_seconds =
        out.stats.elapsed_seconds - out.stats.refine_seconds;
  } else {
    out.stats.refine_seconds = out.stats.elapsed_seconds;
  }
  out.trace = std::move(trace);
  RecordQueryMetrics(out.stats);
  return out;
}


KnnResult NearTriangleSearcher::Range(const Trajectory& query,
                                      int radius) const {
  const auto start = std::chrono::steady_clock::now();
  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  std::vector<std::pair<uint32_t, double>> proc_array;
  proc_array.reserve(matrix_.num_refs());

  KnnResult out;
  size_t computed = 0;
  StageCounters& stages = out.stats.stages;
  for (const Trajectory& s : db_) {
    stages.Bump(&StageCounters::considered);
    double max_prune_dist = 0.0;
    for (const auto& [ref_id, ref_dist] : proc_array) {
      const double bound = ref_dist - matrix_.at(ref_id, s.id()) -
                           static_cast<double>(s.size());
      max_prune_dist = std::max(max_prune_dist, bound);
    }
    if (max_prune_dist > static_cast<double>(radius)) {
      stages.Bump(&StageCounters::triangle_pruned);
      continue;
    }

    const int dist =
        EdrDistanceBoundedWith(kernel, scratch, query, s, epsilon_, radius);
    ++computed;
    stages.CountDp(query.size(), s.size());
    if (s.id() < matrix_.num_refs() &&
        proc_array.size() < matrix_.num_refs()) {
      proc_array.emplace_back(s.id(), static_cast<double>(dist));
    }
    if (dist <= radius) {
      out.neighbors.push_back({s.id(), static_cast<double>(dist)});
    } else {
      stages.Bump(&StageCounters::dp_early_abandoned);
    }
  }
  SortNeighborsAscending(&out.neighbors);
  const auto stop = std::chrono::steady_clock::now();
  out.stats.db_size = db_.size();
  out.stats.edr_computed = computed;
  stages.FinalizeNotVisited(db_.size());
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  RecordQueryMetrics(out.stats);
  return out;
}

}  // namespace edr
