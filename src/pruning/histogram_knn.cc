#include "pruning/histogram_knn.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <vector>

#include "distance/edr_kernel.h"
#include "obs/trace.h"
#include "query/feature_cache.h"
#include "query/intra_query.h"
#include "query/topk.h"

namespace edr {

HistogramKnnSearcher::HistogramKnnSearcher(const TrajectoryDataset& db,
                                           double epsilon,
                                           HistogramTable::Kind kind,
                                           int delta, HistogramScan scan,
                                           HistogramLayout layout)
    : db_(db),
      epsilon_(epsilon),
      scan_(scan),
      table_(db, epsilon, kind, delta, layout) {}

KnnResult HistogramKnnSearcher::Knn(const Trajectory& query, size_t k,
                                    const KnnOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  KnnResult out;
  out.stats.db_size = db_.size();
  if (k == 0) {
    out.stats.stages.FinalizeNotVisited(db_.size());
    return out;
  }

  std::shared_ptr<QueryTrace> trace = MakeQueryTrace();
  RecordSchedBudget(trace.get(), options);
  TraceSpan sweep_span(trace.get(), "bound_sweep");
  const std::shared_ptr<const HistogramTable::QueryHistogram> qh_ptr =
      GetOrBuildFeature<HistogramTable::QueryHistogram>(
          options.feature_cache, table_.feature_key(), query,
          [&] { return table_.MakeQueryHistogram(query); });
  const HistogramTable::QueryHistogram& qh = *qh_ptr;

  // Both scans consume the whole bound array anyway, so it is produced by
  // one vectorized sweep over the flat tables instead of n per-row calls.
  // (The exact max-flow bound prunes almost nothing beyond the fast bound
  // at ~25x the cost, so the searchers do not consult it; see
  // bench_ablation for the measured tightness gap.)
  std::vector<int> bounds;
  table_.FastLowerBoundSweepParallel(qh, &bounds, options);
  sweep_span.End();
  const double filter_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return RefineWithBounds(query, k, options, bounds, std::move(trace),
                          filter_seconds);
}

std::vector<KnnResult> HistogramKnnSearcher::KnnFused(
    const std::vector<const Trajectory*>& queries, size_t k,
    const KnnOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  const size_t group = queries.size();
  std::vector<KnnResult> results(group);
  if (group == 0) return results;
  if (k == 0) {
    for (KnnResult& r : results) {
      r.stats.db_size = db_.size();
      r.stats.stages.FinalizeNotVisited(db_.size());
    }
    return results;
  }

  // Per-member features go through the same cache keys as the single-query
  // path; each member's trace records the shared database pass as a
  // "fused_sweep" span (all members pay — and amortize — the one sweep).
  std::vector<std::shared_ptr<QueryTrace>> traces(group);
  std::vector<int32_t> span_ids(group, -1);
  std::vector<std::shared_ptr<const HistogramTable::QueryHistogram>> features(
      group);
  std::vector<const HistogramTable::QueryHistogram*> qhs(group);
  std::vector<std::vector<int>> bounds(group);
  std::vector<std::vector<int>*> outs(group);
  for (size_t f = 0; f < group; ++f) {
    traces[f] = MakeQueryTrace();
    RecordSchedBudget(traces[f].get(), options);
    if (traces[f] != nullptr) span_ids[f] = traces[f]->Begin("fused_sweep");
    features[f] = GetOrBuildFeature<HistogramTable::QueryHistogram>(
        options.feature_cache, table_.feature_key(), *queries[f],
        [&] { return table_.MakeQueryHistogram(*queries[f]); });
    qhs[f] = features[f].get();
    outs[f] = &bounds[f];
  }
  table_.FastLowerBoundSweepFusedParallel(qhs, outs, options);
  for (size_t f = 0; f < group; ++f) {
    if (traces[f] != nullptr) traces[f]->End(span_ids[f]);
  }
  const double filter_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (size_t f = 0; f < group; ++f) {
    results[f] = RefineWithBounds(*queries[f], k, options, bounds[f],
                                  std::move(traces[f]), filter_seconds);
  }
  return results;
}

KnnResult HistogramKnnSearcher::RefineWithBounds(
    const Trajectory& query, size_t k, const KnnOptions& options,
    const std::vector<int>& bounds, std::shared_ptr<QueryTrace> trace,
    double filter_seconds) const {
  const auto refine_start = std::chrono::steady_clock::now();
  KnnResult out;
  out.stats.db_size = db_.size();
  const EdrKernel kernel = DefaultEdrKernel();
  const unsigned slots = ResolveIntraQueryWorkers(options);
  std::vector<size_t> computed(slots, 0);
  std::vector<StageCounters> slot_stages(slots);
  // Refines one candidate against the running k-th distance; true iff the
  // bounded DP ran to an exact value (<= the bound it was given).
  const auto refine = [&](unsigned slot, uint32_t id, double threshold,
                          double* dist) {
    StageCounters& st = slot_stages[slot];
    st.Bump(&StageCounters::considered);
    if (static_cast<double>(bounds[id]) > threshold) {
      st.Bump(&StageCounters::histogram_pruned);
      return false;
    }
    const int bound = EdrBoundFromKthDistance(threshold);
    const int d = EdrDistanceBoundedWith(kernel, ThreadLocalEdrScratch(),
                                         query, db_[id], epsilon_, bound);
    ++computed[slot];
    st.CountDp(query.size(), db_[id].size());
    if (d > bound) {  // Abandoned: a lower bound, not exact.
      st.Bump(&StageCounters::dp_early_abandoned);
      return false;
    }
    *dist = static_cast<double>(d);
    return true;
  };

  TraceSpan refine_span(trace.get(), "refine");
  const TraceContext tc{trace.get(), refine_span.id()};
  if (scan_ == HistogramScan::kSequential) {
    // HSE: one pass in database order, filtering with the linear-time
    // transport bound.
    out.neighbors = RefineInDbOrder(db_.size(), k, options, refine, tc);
  } else {
    // HSR: visit candidates in ascending bound order; the scan stops
    // outright once the bound exceeds the k-th distance — every later
    // candidate has an even larger bound.
    std::vector<StreamingOrder<int>::Entry> entries(db_.size());
    for (size_t i = 0; i < db_.size(); ++i) {
      entries[i] = {bounds[i], static_cast<uint32_t>(i)};
    }
    const auto stop = [](int key, double threshold) {
      return static_cast<double>(key) > threshold;
    };
    out.neighbors = RefineInKeyOrder<int>(std::move(entries), k, options,
                                          refine, stop, tc);
  }
  refine_span.End();

  const auto stop_time = std::chrono::steady_clock::now();
  for (const size_t c : computed) out.stats.edr_computed += c;
  for (const StageCounters& st : slot_stages) out.stats.stages.Add(st);
  out.stats.stages.FinalizeNotVisited(db_.size());
  out.trace = std::move(trace);
  out.stats.filter_seconds = filter_seconds;
  out.stats.refine_seconds =
      std::chrono::duration<double>(stop_time - refine_start).count();
  out.stats.elapsed_seconds =
      out.stats.filter_seconds + out.stats.refine_seconds;
  RecordQueryMetrics(out.stats);
  return out;
}

std::string HistogramKnnSearcher::name() const {
  std::string base = table_.kind() == HistogramTable::Kind::k2D
                         ? "2H" + std::to_string(table_.delta()) + "E"
                         : "1HE";
  if (table_.kind() == HistogramTable::Kind::k2D && table_.delta() == 1) {
    base = "2HE";
  }
  return (scan_ == HistogramScan::kSorted ? "HSR-" : "HSE-") + base;
}


KnnResult HistogramKnnSearcher::Range(const Trajectory& query,
                                      int radius) const {
  const auto start = std::chrono::steady_clock::now();
  const HistogramTable::QueryHistogram qh = table_.MakeQueryHistogram(query);

  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  std::vector<int> bounds;
  table_.FastLowerBoundSweep(qh, &bounds);
  KnnResult out;
  size_t computed = 0;
  StageCounters& stages = out.stats.stages;
  for (const Trajectory& s : db_) {
    stages.Bump(&StageCounters::considered);
    if (bounds[s.id()] > radius) {
      stages.Bump(&StageCounters::histogram_pruned);
      continue;
    }
    const int dist =
        EdrDistanceBoundedWith(kernel, scratch, query, s, epsilon_, radius);
    ++computed;
    stages.CountDp(query.size(), s.size());
    if (dist <= radius) {
      out.neighbors.push_back({s.id(), static_cast<double>(dist)});
    } else {
      stages.Bump(&StageCounters::dp_early_abandoned);
    }
  }
  SortNeighborsAscending(&out.neighbors);
  const auto stop = std::chrono::steady_clock::now();
  out.stats.db_size = db_.size();
  out.stats.edr_computed = computed;
  stages.FinalizeNotVisited(db_.size());
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  RecordQueryMetrics(out.stats);
  return out;
}

}  // namespace edr
