#include "pruning/histogram_knn.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <vector>

#include "distance/edr_kernel.h"

namespace edr {

HistogramKnnSearcher::HistogramKnnSearcher(const TrajectoryDataset& db,
                                           double epsilon,
                                           HistogramTable::Kind kind,
                                           int delta, HistogramScan scan)
    : db_(db),
      epsilon_(epsilon),
      scan_(scan),
      table_(db, epsilon, kind, delta) {}

KnnResult HistogramKnnSearcher::Knn(const Trajectory& query,
                                    size_t k) const {
  const auto start = std::chrono::steady_clock::now();
  const HistogramTable::QueryHistogram qh = table_.MakeQueryHistogram(query);
  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();

  KnnResultList result(k);
  size_t computed = 0;

  // Both scans consume the whole bound array anyway, so it is produced by
  // one vectorized sweep over the flat tables instead of n per-row calls.
  // (The exact max-flow bound prunes almost nothing beyond the fast bound
  // at ~25x the cost, so the searchers do not consult it; see
  // bench_ablation for the measured tightness gap.)
  std::vector<int> bounds;
  table_.FastLowerBoundSweep(qh, &bounds);

  if (scan_ == HistogramScan::kSequential) {
    // HSE: one pass in database order, filtering with the linear-time
    // transport bound.
    for (const Trajectory& s : db_) {
      const double best = result.KthDistance();
      if (static_cast<double>(bounds[s.id()]) > best) {
        continue;
      }
      const double dist = static_cast<double>(
          EdrDistanceBoundedWith(kernel, scratch, query, s, epsilon_,
                                 EdrBoundFromKthDistance(best)));
      ++computed;
      result.Offer(s.id(), dist);
    }
  } else {
    // HSR: visit candidates in ascending bound order; the scan stops
    // outright once the bound exceeds the k-th distance — every later
    // candidate has an even larger bound.
    std::vector<uint32_t> order(db_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&bounds](uint32_t a, uint32_t b) {
      return bounds[a] < bounds[b];
    });
    for (const uint32_t id : order) {
      const double best = result.KthDistance();
      if (static_cast<double>(bounds[id]) > best) break;  // All later, too.
      const double dist = static_cast<double>(
          EdrDistanceBoundedWith(kernel, scratch, query, db_[id], epsilon_,
                                 EdrBoundFromKthDistance(best)));
      ++computed;
      result.Offer(id, dist);
    }
  }

  const auto stop = std::chrono::steady_clock::now();
  KnnResult out;
  out.neighbors = std::move(result).TakeNeighbors();
  out.stats.db_size = db_.size();
  out.stats.edr_computed = computed;
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  return out;
}

std::string HistogramKnnSearcher::name() const {
  std::string base = table_.kind() == HistogramTable::Kind::k2D
                         ? "2H" + std::to_string(table_.delta()) + "E"
                         : "1HE";
  if (table_.kind() == HistogramTable::Kind::k2D && table_.delta() == 1) {
    base = "2HE";
  }
  return (scan_ == HistogramScan::kSorted ? "HSR-" : "HSE-") + base;
}


KnnResult HistogramKnnSearcher::Range(const Trajectory& query,
                                      int radius) const {
  const auto start = std::chrono::steady_clock::now();
  const HistogramTable::QueryHistogram qh = table_.MakeQueryHistogram(query);

  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  std::vector<int> bounds;
  table_.FastLowerBoundSweep(qh, &bounds);
  KnnResult out;
  size_t computed = 0;
  for (const Trajectory& s : db_) {
    if (bounds[s.id()] > radius) continue;
    const int dist =
        EdrDistanceBoundedWith(kernel, scratch, query, s, epsilon_, radius);
    ++computed;
    if (dist <= radius) {
      out.neighbors.push_back({s.id(), static_cast<double>(dist)});
    }
  }
  std::sort(out.neighbors.begin(), out.neighbors.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  const auto stop = std::chrono::steady_clock::now();
  out.stats.db_size = db_.size();
  out.stats.edr_computed = computed;
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  return out;
}

}  // namespace edr
