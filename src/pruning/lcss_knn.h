#ifndef EDR_PRUNING_LCSS_KNN_H_
#define EDR_PRUNING_LCSS_KNN_H_

#include <string>
#include <vector>

#include "core/dataset.h"
#include "pruning/histogram.h"
#include "pruning/qgram.h"
#include "query/knn.h"

namespace edr {

/// Which lossless filters the LCSS searcher applies.
enum class LcssFilter {
  kNone,       ///< plain sequential scan (the baseline)
  kHistogram,  ///< transport upper bound on the LCSS score
  kQgram,      ///< element-match-count upper bound (q = 1 mean grams)
  kBoth,       ///< histogram first, then the count bound
};

/// k-NN search under the LCSS *distance* 1 - LCSS(Q,S)/min(m,n),
/// realizing the paper's remark that "the pruning techniques that we
/// propose in this paper can also be applied to LCSS (details omitted)".
///
/// Both filters are upper bounds on the LCSS score, hence lower bounds on
/// the distance:
///  - every pair matched by an optimal common subsequence lies within
///    epsilon, i.e. in the same or adjacent histogram bins, and each
///    element is used at most once — so the matched pairs form a feasible
///    transport and LCSS(Q,S) <= T*(Q,S) <= FastTransportBound;
///  - each matched query element matches at least one database element,
///    so LCSS(Q,S) <= #(query elements with some epsilon-match in S),
///    which is exactly the q = 1 mean-value gram count.
///
/// Candidates are visited in ascending histogram-bound order (HSR) when
/// the histogram filter is active; the scan stops at the first bound
/// exceeding the current k-th distance.
class LcssKnnSearcher {
 public:
  LcssKnnSearcher(const TrajectoryDataset& db, double epsilon,
                  LcssFilter filter,
                  HistogramLayout layout = HistogramLayout::kAdaptive);

  /// `options` shards the bound sweep, count filter, and exact-LCSS
  /// refinement over the thread pool; results are bit-identical for every
  /// worker count.
  KnnResult Knn(const Trajectory& query, size_t k,
                const KnnOptions& options = {}) const;

  /// Answers a fusion group of queries; when the histogram filter is
  /// active its whole-database bound sweep is fused into one cache-blocked
  /// table pass serving every member. `results[i]` is bit-identical to
  /// `Knn(*queries[i], k, options)` for every filter configuration.
  std::vector<KnnResult> KnnFused(
      const std::vector<const Trajectory*>& queries, size_t k,
      const KnnOptions& options = {}) const;

  /// Occupied-bin signature for the similarity-aware fusion grouper,
  /// delegated to the histogram table (the structure the fused sweep
  /// shares). Purely advisory.
  uint64_t FusionFingerprint(const Trajectory& query) const {
    return histograms_.QueryBinSignature(query);
  }

  std::string name() const;

 private:
  /// Per-query tail shared by Knn and KnnFused: the count filter plus
  /// exact-LCSS refinement over precomputed distance bounds (`bounds`
  /// empty when the histogram filter is off).
  KnnResult RefineWithBounds(const Trajectory& query, size_t k,
                             const KnnOptions& options,
                             const std::vector<double>& bounds,
                             const std::vector<Point2>& query_means,
                             std::shared_ptr<QueryTrace> trace,
                             double filter_seconds) const;

  const TrajectoryDataset& db_;
  double epsilon_;
  LcssFilter filter_;
  HistogramTable histograms_;
  QgramMeansTable qgram_means_;  // q = 1 element means, flat and sorted
};

}  // namespace edr

#endif  // EDR_PRUNING_LCSS_KNN_H_
