#ifndef EDR_PRUNING_NEAR_TRIANGLE_H_
#define EDR_PRUNING_NEAR_TRIANGLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "query/knn.h"

namespace edr {

/// Precomputed EDR distances between a prefix of the database (the
/// candidate reference trajectories) and every database trajectory.
///
/// This materializes exactly the columns of the paper's pairwise distance
/// matrix `pmatrix` that near-triangle pruning can touch: the paper picks
/// "the first maxTriangle trajectories that fill up procArray" as
/// references and pages their columns into a buffer (Section 4.2), so only
/// `num_refs * N` of the `N * N` matrix is ever needed.
class PairwiseEdrMatrix {
 public:
  /// Computes EDR(db[r], db[s]) for r < num_refs and all s. This is the
  /// offline preprocessing step; its cost is excluded from query-time
  /// measurements, as in the paper.
  static PairwiseEdrMatrix Build(const TrajectoryDataset& db, double epsilon,
                                 size_t num_refs);

  /// Multi-threaded Build: rows are distributed over `threads` workers
  /// (0 = hardware concurrency). Bitwise-identical to Build.
  static PairwiseEdrMatrix BuildParallel(const TrajectoryDataset& db,
                                         double epsilon, size_t num_refs,
                                         unsigned threads = 0);

  /// Reconstructs a matrix from raw parts (the persistence path); sizes
  /// must satisfy distances.size() == num_refs * db_size.
  static PairwiseEdrMatrix FromParts(size_t num_refs, size_t db_size,
                                     std::vector<int> distances);

  /// Row-major distance payload (num_refs x db_size), for persistence.
  const std::vector<int>& data() const { return distances_; }

  size_t num_refs() const { return num_refs_; }
  size_t db_size() const { return db_size_; }

  /// EDR distance between reference `ref` (< num_refs) and trajectory `id`.
  int at(size_t ref, uint32_t id) const {
    return distances_[ref * db_size_ + id];
  }

 private:
  size_t num_refs_ = 0;
  size_t db_size_ = 0;
  std::vector<int> distances_;
};

/// k-NN searcher using the near triangle inequality (Theorem 5):
///
///   EDR(Q, S) + EDR(S, R) + |S| >= EDR(Q, R)
///   =>  EDR(Q, S) >= EDR(Q, R) - EDR(S, R) - |S|,
///
/// a lower bound on EDR(Q, S) from the already-computed EDR(Q, R) of a
/// reference trajectory R and the precomputed EDR(S, R). The Figure 4
/// algorithm: maintain `procArray` of references with known true distances;
/// a candidate S is pruned when the maximum lower bound over references
/// exceeds the current k-th distance.
///
/// The |S| slack makes this a weak filter that can only fire when lengths
/// differ (Section 5.2 confirms ~0 power on fixed-length datasets).
class NearTriangleSearcher {
 public:
  /// `max_triangle` is the reference budget (the paper uses 400).
  NearTriangleSearcher(const TrajectoryDataset& db, double epsilon,
                       size_t max_triangle = 400);

  /// Constructs with a pre-built matrix (shared across searchers).
  NearTriangleSearcher(const TrajectoryDataset& db, double epsilon,
                       PairwiseEdrMatrix matrix);

  /// `options` shards the refinement scan over the thread pool (per-worker
  /// reference arrays); results are bit-identical for every worker count.
  KnnResult Knn(const Trajectory& query, size_t k,
                const KnnOptions& options = {}) const;

  /// Range query: prunes candidates whose reference-based lower bound
  /// exceeds `radius`. Lossless.
  KnnResult Range(const Trajectory& query, int radius) const;

  const PairwiseEdrMatrix& matrix() const { return matrix_; }
  std::string name() const { return "NTR"; }

 private:
  const TrajectoryDataset& db_;
  double epsilon_;
  PairwiseEdrMatrix matrix_;
};

}  // namespace edr

#endif  // EDR_PRUNING_NEAR_TRIANGLE_H_
