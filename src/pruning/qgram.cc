#include "pruning/qgram.h"

#include <algorithm>
#include <cmath>

namespace edr {

std::vector<Point2> MeanValueQgrams(const Trajectory& t, int q) {
  std::vector<Point2> means;
  if (q <= 0 || t.size() < static_cast<size_t>(q)) return means;
  means.reserve(t.size() - static_cast<size_t>(q) + 1);

  // Sliding-window sum; q is small (1..4 in the paper) so numerical drift
  // is negligible, but we recompute exactly to keep results deterministic.
  double sum_x = 0.0;
  double sum_y = 0.0;
  for (int i = 0; i < q; ++i) {
    sum_x += t[static_cast<size_t>(i)].x;
    sum_y += t[static_cast<size_t>(i)].y;
  }
  const double inv_q = 1.0 / static_cast<double>(q);
  means.push_back({sum_x * inv_q, sum_y * inv_q});
  for (size_t i = static_cast<size_t>(q); i < t.size(); ++i) {
    sum_x += t[i].x - t[i - static_cast<size_t>(q)].x;
    sum_y += t[i].y - t[i - static_cast<size_t>(q)].y;
    means.push_back({sum_x * inv_q, sum_y * inv_q});
  }
  return means;
}

std::vector<double> MeanValueQgrams1D(const Trajectory& t, int q, bool use_x) {
  std::vector<double> means;
  if (q <= 0 || t.size() < static_cast<size_t>(q)) return means;
  means.reserve(t.size() - static_cast<size_t>(q) + 1);
  double sum = 0.0;
  for (int i = 0; i < q; ++i) {
    const Point2& p = t[static_cast<size_t>(i)];
    sum += use_x ? p.x : p.y;
  }
  const double inv_q = 1.0 / static_cast<double>(q);
  means.push_back(sum * inv_q);
  for (size_t i = static_cast<size_t>(q); i < t.size(); ++i) {
    const Point2& in = t[i];
    const Point2& out = t[i - static_cast<size_t>(q)];
    sum += (use_x ? in.x : in.y) - (use_x ? out.x : out.y);
    means.push_back(sum * inv_q);
  }
  return means;
}

long QgramCountThreshold(size_t m, size_t n, int q, long k) {
  const long max_len = static_cast<long>(std::max(m, n));
  return max_len - static_cast<long>(q) + 1 - k * static_cast<long>(q);
}

void SortMeans(std::vector<Point2>& means) {
  std::sort(means.begin(), means.end(), [](Point2 a, Point2 b) {
    if (a.x != b.x) return a.x < b.x;
    return a.y < b.y;
  });
}

size_t CountMatchingMeans2D(const std::vector<Point2>& query_means,
                            const std::vector<Point2>& data_means,
                            double epsilon) {
  size_t count = 0;
  size_t window_start = 0;
  // Merge join: both lists are sorted by x, so for each query mean the
  // x-compatible data means form a window that only advances.
  for (const Point2& qm : query_means) {
    while (window_start < data_means.size() &&
           data_means[window_start].x < qm.x - epsilon) {
      ++window_start;
    }
    for (size_t j = window_start; j < data_means.size(); ++j) {
      if (data_means[j].x > qm.x + epsilon) break;
      if (std::fabs(data_means[j].y - qm.y) <= epsilon) {
        ++count;
        break;
      }
    }
  }
  return count;
}

size_t CountMatchingMeans1D(const std::vector<double>& query_means,
                            const std::vector<double>& data_means,
                            double epsilon) {
  size_t count = 0;
  size_t window_start = 0;
  for (const double qm : query_means) {
    while (window_start < data_means.size() &&
           data_means[window_start] < qm - epsilon) {
      ++window_start;
    }
    if (window_start < data_means.size() &&
        data_means[window_start] <= qm + epsilon) {
      ++count;
    }
  }
  return count;
}

namespace {

/// First index in [begin, end) with xs[idx] >= limit, by galloping:
/// exponential probe from `begin`, then binary search the bracketed run.
/// Equivalent to std::lower_bound but O(log gap) when the answer is near
/// `begin` — the common case for sorted merge windows that only advance.
size_t GallopLowerBound(const double* xs, size_t begin, size_t end,
                        double limit) {
  if (begin >= end || xs[begin] >= limit) return begin;
  size_t offset = 1;
  while (begin + offset < end && xs[begin + offset] < limit) offset <<= 1;
  // xs[begin + offset/2] < limit held on the last passing probe; the
  // answer lies in (begin + offset/2, min(begin + offset, end)].
  const double* lo = xs + begin + offset / 2 + 1;
  const double* hi = xs + std::min(begin + offset, end);
  return static_cast<size_t>(std::lower_bound(lo, hi, limit) - xs);
}

}  // namespace

QgramMeansTable::QgramMeansTable(const TrajectoryDataset& db, int q,
                                 int dims)
    : dims_(dims) {
  offsets_.reserve(db.size() + 1);
  offsets_.push_back(0);
  if (dims_ == 2) {
    for (const Trajectory& t : db) {
      std::vector<Point2> means = MeanValueQgrams(t, q);
      SortMeans(means);
      for (const Point2& m : means) {
        xs_.push_back(m.x);
        ys_.push_back(m.y);
      }
      offsets_.push_back(static_cast<uint32_t>(xs_.size()));
    }
  } else {
    for (const Trajectory& t : db) {
      std::vector<double> means = MeanValueQgrams1D(t, q, /*use_x=*/true);
      std::sort(means.begin(), means.end());
      xs_.insert(xs_.end(), means.begin(), means.end());
      offsets_.push_back(static_cast<uint32_t>(xs_.size()));
    }
  }
}

size_t QgramMeansTable::CountMatches2D(const std::vector<Point2>& query_means,
                                       double epsilon, uint32_t id) const {
  const size_t end = offsets_[id + 1];
  size_t count = 0;
  size_t window_start = offsets_[id];
  for (const Point2& qm : query_means) {
    window_start =
        GallopLowerBound(xs_.data(), window_start, end, qm.x - epsilon);
    for (size_t j = window_start; j < end; ++j) {
      if (xs_[j] > qm.x + epsilon) break;
      if (std::fabs(ys_[j] - qm.y) <= epsilon) {
        ++count;
        break;
      }
    }
  }
  return count;
}

size_t QgramMeansTable::CountMatches1D(const std::vector<double>& query_means,
                                       double epsilon, uint32_t id) const {
  const size_t end = offsets_[id + 1];
  size_t count = 0;
  size_t window_start = offsets_[id];
  for (const double qm : query_means) {
    window_start =
        GallopLowerBound(xs_.data(), window_start, end, qm - epsilon);
    if (window_start < end && xs_[window_start] <= qm + epsilon) ++count;
  }
  return count;
}

}  // namespace edr
