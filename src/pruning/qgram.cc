#include "pruning/qgram.h"

#include <algorithm>
#include <cmath>

#include "core/cpu.h"
#include "query/thread_pool.h"

#if defined(__x86_64__) && defined(__GNUC__) && !defined(EDR_DISABLE_SIMD)
#include <immintrin.h>
#define EDR_QGRAM_AVX2 1
#define EDR_QGRAM_AVX512 1
#endif

#if defined(__aarch64__) && !defined(EDR_DISABLE_SIMD)
#include <arm_neon.h>
#define EDR_QGRAM_NEON 1
#endif

namespace edr {

std::vector<Point2> MeanValueQgrams(const Trajectory& t, int q) {
  std::vector<Point2> means;
  if (q <= 0 || t.size() < static_cast<size_t>(q)) return means;
  means.reserve(t.size() - static_cast<size_t>(q) + 1);

  // Sliding-window sum; q is small (1..4 in the paper) so numerical drift
  // is negligible, but we recompute exactly to keep results deterministic.
  double sum_x = 0.0;
  double sum_y = 0.0;
  for (int i = 0; i < q; ++i) {
    sum_x += t[static_cast<size_t>(i)].x;
    sum_y += t[static_cast<size_t>(i)].y;
  }
  const double inv_q = 1.0 / static_cast<double>(q);
  means.push_back({sum_x * inv_q, sum_y * inv_q});
  for (size_t i = static_cast<size_t>(q); i < t.size(); ++i) {
    sum_x += t[i].x - t[i - static_cast<size_t>(q)].x;
    sum_y += t[i].y - t[i - static_cast<size_t>(q)].y;
    means.push_back({sum_x * inv_q, sum_y * inv_q});
  }
  return means;
}

std::vector<double> MeanValueQgrams1D(const Trajectory& t, int q, bool use_x) {
  std::vector<double> means;
  if (q <= 0 || t.size() < static_cast<size_t>(q)) return means;
  means.reserve(t.size() - static_cast<size_t>(q) + 1);
  double sum = 0.0;
  for (int i = 0; i < q; ++i) {
    const Point2& p = t[static_cast<size_t>(i)];
    sum += use_x ? p.x : p.y;
  }
  const double inv_q = 1.0 / static_cast<double>(q);
  means.push_back(sum * inv_q);
  for (size_t i = static_cast<size_t>(q); i < t.size(); ++i) {
    const Point2& in = t[i];
    const Point2& out = t[i - static_cast<size_t>(q)];
    sum += (use_x ? in.x : in.y) - (use_x ? out.x : out.y);
    means.push_back(sum * inv_q);
  }
  return means;
}

long QgramCountThreshold(size_t m, size_t n, int q, long k) {
  const long max_len = static_cast<long>(std::max(m, n));
  return max_len - static_cast<long>(q) + 1 - k * static_cast<long>(q);
}

void SortMeans(std::vector<Point2>& means) {
  std::sort(means.begin(), means.end(), [](Point2 a, Point2 b) {
    if (a.x != b.x) return a.x < b.x;
    return a.y < b.y;
  });
}

size_t CountMatchingMeans2D(const std::vector<Point2>& query_means,
                            const std::vector<Point2>& data_means,
                            double epsilon) {
  size_t count = 0;
  size_t window_start = 0;
  // Merge join: both lists are sorted by x, so for each query mean the
  // x-compatible data means form a window that only advances.
  for (const Point2& qm : query_means) {
    while (window_start < data_means.size() &&
           data_means[window_start].x < qm.x - epsilon) {
      ++window_start;
    }
    for (size_t j = window_start; j < data_means.size(); ++j) {
      if (data_means[j].x > qm.x + epsilon) break;
      if (std::fabs(data_means[j].y - qm.y) <= epsilon) {
        ++count;
        break;
      }
    }
  }
  return count;
}

size_t CountMatchingMeans1D(const std::vector<double>& query_means,
                            const std::vector<double>& data_means,
                            double epsilon) {
  size_t count = 0;
  size_t window_start = 0;
  for (const double qm : query_means) {
    while (window_start < data_means.size() &&
           data_means[window_start] < qm - epsilon) {
      ++window_start;
    }
    if (window_start < data_means.size() &&
        data_means[window_start] <= qm + epsilon) {
      ++count;
    }
  }
  return count;
}

namespace {

/// First index in [begin, end) with xs[idx] >= limit, by galloping:
/// exponential probe from `begin`, then binary search the bracketed run.
/// Equivalent to std::lower_bound but O(log gap) when the answer is near
/// `begin` — the common case for sorted merge windows that only advance.
size_t GallopLowerBound(const double* xs, size_t begin, size_t end,
                        double limit) {
  if (begin >= end || xs[begin] >= limit) return begin;
  size_t offset = 1;
  while (begin + offset < end && xs[begin + offset] < limit) offset <<= 1;
  // xs[begin + offset/2] < limit held on the last passing probe; the
  // answer lies in (begin + offset/2, min(begin + offset, end)].
  const double* lo = xs + begin + offset / 2 + 1;
  const double* hi = xs + std::min(begin + offset, end);
  return static_cast<size_t>(std::lower_bound(lo, hi, limit) - xs);
}

}  // namespace

QgramMeansTable::QgramMeansTable(const TrajectoryDataset& db, int q,
                                 int dims)
    : dims_(dims) {
  // The number of Q-grams of a trajectory is a pure function of its
  // length, so the flat offsets can be prefix-summed before any mean is
  // computed. Each trajectory then sorts and writes its means into its own
  // disjoint slice, making the build embarrassingly parallel while
  // producing the exact array a sequential append would.
  const size_t n = db.size();
  offsets_.assign(n + 1, 0);
  for (size_t id = 0; id < n; ++id) {
    const size_t len = db[id].size();
    const size_t grams =
        (q > 0 && len >= static_cast<size_t>(q))
            ? len - static_cast<size_t>(q) + 1
            : 0;
    offsets_[id + 1] = offsets_[id] + static_cast<uint32_t>(grams);
  }
  xs_.resize(offsets_[n]);
  if (dims_ == 2) ys_.resize(offsets_[n]);

  ThreadPool::Global().ParallelFor(n, [&](size_t id) {
    const uint32_t begin = offsets_[id];
    if (dims_ == 2) {
      std::vector<Point2> means = MeanValueQgrams(db[id], q);
      SortMeans(means);
      for (size_t i = 0; i < means.size(); ++i) {
        xs_[begin + i] = means[i].x;
        ys_[begin + i] = means[i].y;
      }
    } else {
      std::vector<double> means = MeanValueQgrams1D(db[id], q, /*use_x=*/true);
      std::sort(means.begin(), means.end());
      std::copy(means.begin(), means.end(), xs_.begin() + begin);
    }
  });
}

namespace {

/// One window scan of the 2-D merge-count: true iff some j in
/// [window_start, end) with xs[j] <= x_hi has |ys[j] - qy| <= epsilon,
/// stopping at the first j with xs[j] > x_hi (xs is sorted).
inline bool WindowHasMatchScalar(const double* xs, const double* ys,
                                 size_t window_start, size_t end, double x_hi,
                                 double qy, double epsilon) {
  for (size_t j = window_start; j < end; ++j) {
    if (xs[j] > x_hi) return false;
    if (std::fabs(ys[j] - qy) <= epsilon) return true;
  }
  return false;
}

#if defined(EDR_QGRAM_AVX2)

/// AVX2 window scan, 4 mean pairs per step: identical per-lane comparisons
/// to the scalar loop (no arithmetic reassociation), so the answer is
/// bit-identical. A block is conclusive as soon as either a lane matches
/// (in-window x AND y within epsilon) or some lane leaves the x-window —
/// the match mask already excludes out-of-window lanes, and the sorted xs
/// guarantee nothing beyond the first out-of-window lane can match.
__attribute__((target("avx2"))) bool WindowHasMatchAvx2(
    const double* xs, const double* ys, size_t window_start, size_t end,
    double x_hi, double qy, double epsilon) {
  const __m256d v_hi = _mm256_set1_pd(x_hi);
  const __m256d v_qy = _mm256_set1_pd(qy);
  const __m256d v_eps = _mm256_set1_pd(epsilon);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  size_t j = window_start;
  for (; j + 4 <= end; j += 4) {
    const __m256d x = _mm256_loadu_pd(xs + j);
    const __m256d in_window = _mm256_cmp_pd(x, v_hi, _CMP_LE_OQ);
    const int in_bits = _mm256_movemask_pd(in_window);
    if (in_bits == 0) return false;  // Whole block past the window.
    const __m256d y = _mm256_loadu_pd(ys + j);
    const __m256d dy =
        _mm256_and_pd(_mm256_sub_pd(y, v_qy), abs_mask);
    const __m256d y_ok = _mm256_cmp_pd(dy, v_eps, _CMP_LE_OQ);
    if (_mm256_movemask_pd(_mm256_and_pd(in_window, y_ok)) != 0) return true;
    if (in_bits != 0xf) return false;  // Window ended inside the block.
  }
  return WindowHasMatchScalar(xs, ys, j, end, x_hi, qy, epsilon);
}

#endif  // defined(EDR_QGRAM_AVX2)

#if defined(EDR_QGRAM_AVX512)

/// AVX-512 window scan, 8 mean pairs per step. Same early-exit logic as
/// the AVX2 body, using predicate masks directly: sorted xs make the
/// in-window mask a *prefix* mask, so a match bit can never sit past the
/// first out-of-window lane and the block verdicts match scalar order.
__attribute__((target("avx512f"))) bool WindowHasMatchAvx512(
    const double* xs, const double* ys, size_t window_start, size_t end,
    double x_hi, double qy, double epsilon) {
  const __m512d v_hi = _mm512_set1_pd(x_hi);
  const __m512d v_qy = _mm512_set1_pd(qy);
  const __m512d v_eps = _mm512_set1_pd(epsilon);
  size_t j = window_start;
  for (; j + 8 <= end; j += 8) {
    const __m512d x = _mm512_loadu_pd(xs + j);
    const __mmask8 in_window = _mm512_cmp_pd_mask(x, v_hi, _CMP_LE_OQ);
    if (in_window == 0) return false;  // Whole block past the window.
    const __m512d y = _mm512_loadu_pd(ys + j);
    const __m512d dy = _mm512_abs_pd(_mm512_sub_pd(y, v_qy));
    const __mmask8 y_ok = _mm512_cmp_pd_mask(dy, v_eps, _CMP_LE_OQ);
    if ((in_window & y_ok) != 0) return true;
    if (in_window != 0xff) return false;  // Window ended inside the block.
  }
  return WindowHasMatchScalar(xs, ys, j, end, x_hi, qy, epsilon);
}

#endif  // defined(EDR_QGRAM_AVX512)

#if defined(EDR_QGRAM_NEON)

/// NEON window scan, 2 mean pairs per step (FABD computes |y - qy| with a
/// single rounding of the subtraction, exactly like fabs(y - qy)).
inline bool WindowHasMatchNeon(const double* xs, const double* ys,
                               size_t window_start, size_t end, double x_hi,
                               double qy, double epsilon) {
  const float64x2_t v_hi = vdupq_n_f64(x_hi);
  const float64x2_t v_qy = vdupq_n_f64(qy);
  const float64x2_t v_eps = vdupq_n_f64(epsilon);
  size_t j = window_start;
  for (; j + 2 <= end; j += 2) {
    const float64x2_t x = vld1q_f64(xs + j);
    const uint64x2_t in_window = vcleq_f64(x, v_hi);
    const uint64_t in0 = vgetq_lane_u64(in_window, 0);
    const uint64_t in1 = vgetq_lane_u64(in_window, 1);
    if ((in0 | in1) == 0) return false;
    const float64x2_t dy = vabdq_f64(vld1q_f64(ys + j), v_qy);
    const uint64x2_t y_ok = vcleq_f64(dy, v_eps);
    if ((in0 & vgetq_lane_u64(y_ok, 0)) != 0 ||
        (in1 & vgetq_lane_u64(y_ok, 1)) != 0) {
      return true;
    }
    if (in1 == 0) return false;  // Window ended inside the block.
  }
  return WindowHasMatchScalar(xs, ys, j, end, x_hi, qy, epsilon);
}

#endif  // defined(EDR_QGRAM_NEON)

using WindowHasMatchFn = bool (*)(const double*, const double*, size_t,
                                  size_t, double, double, double);

/// Kernel for a dispatch level, resolved per CountMatches2D call from
/// ActiveKernelLevel() so EDR_FORCE_KERNEL / test pins are honored. The
/// merge-count has no profitable 128-bit double variant on x86 (2 lanes
/// don't amortize the mask extraction), so kSse2 shares the scalar body.
WindowHasMatchFn WindowHasMatchFor(KernelLevel level) {
  switch (level) {
#if defined(EDR_QGRAM_AVX512)
    case KernelLevel::kAvx512: return WindowHasMatchAvx512;
#endif
#if defined(EDR_QGRAM_AVX2)
    case KernelLevel::kAvx2: return WindowHasMatchAvx2;
#endif
#if defined(EDR_QGRAM_NEON)
    case KernelLevel::kNeon: return WindowHasMatchNeon;
#endif
    default: return WindowHasMatchScalar;
  }
}

}  // namespace

size_t QgramMeansTable::CountMatches2D(const std::vector<Point2>& query_means,
                                       double epsilon, uint32_t id) const {
  const size_t end = offsets_[id + 1];
  const WindowHasMatchFn window_has_match =
      WindowHasMatchFor(ActiveKernelLevel());
  size_t count = 0;
  size_t window_start = offsets_[id];
  for (const Point2& qm : query_means) {
    window_start =
        GallopLowerBound(xs_.data(), window_start, end, qm.x - epsilon);
    if (window_has_match(xs_.data(), ys_.data(), window_start, end,
                         qm.x + epsilon, qm.y, epsilon)) {
      ++count;
    }
  }
  return count;
}

size_t QgramMeansTable::CountMatches1D(const std::vector<double>& query_means,
                                       double epsilon, uint32_t id) const {
  const size_t end = offsets_[id + 1];
  size_t count = 0;
  size_t window_start = offsets_[id];
  for (const double qm : query_means) {
    window_start =
        GallopLowerBound(xs_.data(), window_start, end, qm - epsilon);
    if (window_start < end && xs_[window_start] <= qm + epsilon) ++count;
  }
  return count;
}

void QgramMeansTable::CountMatchesFused2D(
    const std::vector<const std::vector<Point2>*>& query_means,
    double epsilon, uint32_t id, size_t* counts) const {
  const size_t begin = offsets_[id];
  const size_t end = offsets_[id + 1];
  // One kernel resolution for the whole group (CountMatches2D resolves
  // per call; per-member resolutions of the same level are equivalent).
  const WindowHasMatchFn window_has_match =
      WindowHasMatchFor(ActiveKernelLevel());
  for (size_t fq = 0; fq < query_means.size(); ++fq) {
    size_t count = 0;
    size_t window_start = begin;
    for (const Point2& qm : *query_means[fq]) {
      window_start =
          GallopLowerBound(xs_.data(), window_start, end, qm.x - epsilon);
      if (window_has_match(xs_.data(), ys_.data(), window_start, end,
                           qm.x + epsilon, qm.y, epsilon)) {
        ++count;
      }
    }
    counts[fq] = count;
  }
}

void QgramMeansTable::CountMatchesFused1D(
    const std::vector<const std::vector<double>*>& query_means,
    double epsilon, uint32_t id, size_t* counts) const {
  const size_t begin = offsets_[id];
  const size_t end = offsets_[id + 1];
  for (size_t fq = 0; fq < query_means.size(); ++fq) {
    size_t count = 0;
    size_t window_start = begin;
    for (const double qm : *query_means[fq]) {
      window_start =
          GallopLowerBound(xs_.data(), window_start, end, qm - epsilon);
      if (window_start < end && xs_[window_start] <= qm + epsilon) ++count;
    }
    counts[fq] = count;
  }
}

}  // namespace edr
