#include "pruning/pruning3.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "distance/distance3.h"
#include "distance/edr_kernel.h"
#include "obs/trace.h"
#include "query/topk.h"

namespace edr {

namespace {

// 21 bits per quantized coordinate, biased to stay positive; leaves
// headroom for the +/-1 neighbor offsets without component underflow.
constexpr int64_t kBias = 1 << 20;
constexpr int64_t kCoordMax = (1 << 21) - 2;
constexpr int kShiftY = 21;
constexpr int kShiftX = 42;

int64_t PackCell(int64_t ix, int64_t iy, int64_t iz) {
  return (ix << kShiftX) | (iy << kShiftY) | iz;
}

}  // namespace

KnnResult SequentialScanKnn3(const std::vector<Trajectory3>& db,
                             const Trajectory3& query, size_t k,
                             double epsilon) {
  const auto start = std::chrono::steady_clock::now();
  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  KnnResultList result(k);
  StageCounters stages;
  for (uint32_t i = 0; i < db.size(); ++i) {
    result.Offer(i, static_cast<double>(EdrDistanceWith(
                        kernel, scratch, query, db[i], epsilon)));
    stages.Bump(&StageCounters::considered);
    stages.CountDp(query.size(), db[i].size());
  }
  const auto stop = std::chrono::steady_clock::now();
  KnnResult out;
  out.neighbors = std::move(result).TakeNeighbors();
  out.stats.db_size = db.size();
  out.stats.edr_computed = db.size();
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  out.stats.refine_seconds = out.stats.elapsed_seconds;
  stages.FinalizeNotVisited(db.size());
  out.stats.stages = stages;
  RecordQueryMetrics(out.stats);
  return out;
}

Knn3Searcher::Knn3Searcher(const std::vector<Trajectory3>& db,
                           double epsilon)
    : db_(db), epsilon_(std::max(epsilon, 1e-12)) {
  // Grid origin: one cell of slack below the data minimum in every
  // dimension (elements within epsilon of the range stay in-grid).
  Point3 lo{0.0, 0.0, 0.0};
  bool first = true;
  for (const Trajectory3& t : db_) {
    for (const Point3& p : t) {
      if (first) {
        lo = p;
        first = false;
      } else {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
      }
    }
  }
  grid_min_ = {lo.x - epsilon_, lo.y - epsilon_, lo.z - epsilon_};

  histograms_.reserve(db_.size());
  sorted_elements_.reserve(db_.size());
  for (const Trajectory3& t : db_) {
    histograms_.push_back(BuildHistogram(t));
    std::vector<Point3> elements = t.points();
    std::sort(elements.begin(), elements.end(),
              [](const Point3& a, const Point3& b) {
                if (a.x != b.x) return a.x < b.x;
                if (a.y != b.y) return a.y < b.y;
                return a.z < b.z;
              });
    sorted_elements_.push_back(std::move(elements));
  }
}

int64_t Knn3Searcher::CellKey(const Point3& p) const {
  const auto quantize = [this](double v, double origin) {
    const int64_t q =
        static_cast<int64_t>(std::floor((v - origin) / epsilon_)) + kBias;
    return std::clamp<int64_t>(q, 1, kCoordMax);
  };
  return PackCell(quantize(p.x, grid_min_.x), quantize(p.y, grid_min_.y),
                  quantize(p.z, grid_min_.z));
}

Knn3Searcher::SparseHistogram Knn3Searcher::BuildHistogram(
    const Trajectory3& t) const {
  SparseHistogram h;
  h.total = static_cast<int>(t.size());
  h.bins.reserve(t.size() * 2);
  for (const Point3& p : t) ++h.bins[CellKey(p)];
  return h;
}

int Knn3Searcher::TransportBound(const SparseHistogram& a,
                                 const SparseHistogram& b) const {
  // One side of the linear transport upper bound: every cell of `from`
  // ships at most min(its mass, `to` mass within the 3x3x3 neighborhood).
  const auto side = [](const SparseHistogram& from,
                       const SparseHistogram& to) {
    int bound = 0;
    for (const auto& [key, count] : from.bins) {
      int reachable = 0;
      for (int64_t dx = -1; dx <= 1; ++dx) {
        for (int64_t dy = -1; dy <= 1; ++dy) {
          for (int64_t dz = -1; dz <= 1; ++dz) {
            const auto it = to.bins.find(
                key + (dx << kShiftX) + (dy << kShiftY) + dz);
            if (it != to.bins.end()) reachable += it->second;
          }
        }
      }
      bound += std::min(count, reachable);
    }
    return bound;
  };
  const int transport = std::min(side(a, b), side(b, a));
  return std::max(a.total, b.total) - transport;
}

int Knn3Searcher::HistogramLowerBound(const Trajectory3& query,
                                      uint32_t id) const {
  return TransportBound(BuildHistogram(query), histograms_[id]);
}

size_t Knn3Searcher::MatchCount(const Trajectory3& query,
                                uint32_t id) const {
  const std::vector<Point3>& data = sorted_elements_[id];
  size_t count = 0;
  for (const Point3& q : query) {
    // Binary search the x-window, then scan for a full 3-D match.
    const auto begin = std::lower_bound(
        data.begin(), data.end(), q.x - epsilon_,
        [](const Point3& p, double x) { return p.x < x; });
    for (auto it = begin; it != data.end() && it->x <= q.x + epsilon_;
         ++it) {
      if (std::fabs(it->y - q.y) <= epsilon_ &&
          std::fabs(it->z - q.z) <= epsilon_) {
        ++count;
        break;
      }
    }
  }
  return count;
}

KnnResult Knn3Searcher::Knn(const Trajectory3& query, size_t k) const {
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<QueryTrace> trace = MakeQueryTrace();
  TraceSpan sweep_span(trace.get(), "bound_sweep");
  const SparseHistogram qh = BuildHistogram(query);

  // HSR strategy: every histogram bound up front, ascending order, hard
  // stop at the first bound above the k-th distance. The hard stop
  // usually fires within the first few hundred candidates, so stream the
  // ascending order incrementally instead of fully sorting all n bounds.
  std::vector<int> bounds(db_.size());
  std::vector<StreamingOrder<int>::Entry> entries(db_.size());
  for (uint32_t i = 0; i < db_.size(); ++i) {
    bounds[i] = TransportBound(qh, histograms_[i]);
    entries[i] = {bounds[i], i};
  }
  StreamingOrder<int> order(std::move(entries));
  sweep_span.End();
  const auto filter_done = std::chrono::steady_clock::now();

  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  TraceSpan refine_span(trace.get(), "refine");
  KnnResultList result(k);
  size_t computed = 0;
  StageCounters stages;
  StreamingOrder<int>::Entry entry;
  while (order.Next(&entry)) {
    const uint32_t id = entry.id;
    const double best = result.KthDistance();
    // Hard stop before the candidate is charged: it and everything after
    // it count as not_visited.
    if (static_cast<double>(bounds[id]) > best) break;
    stages.Bump(&StageCounters::considered);

    // Element-match count bound (Theorem 1 with q = 1, three dimensions):
    // EDR <= bestSoFar requires at least max(m, n) - bestSoFar matches.
    if (!std::isinf(best)) {
      const long threshold =
          static_cast<long>(std::max(query.size(), db_[id].size())) -
          static_cast<long>(best);
      if (threshold > 0 &&
          static_cast<long>(MatchCount(query, id)) < threshold) {
        stages.Bump(&StageCounters::qgram_pruned);
        continue;
      }
    }

    const int dp_bound = EdrBoundFromKthDistance(best);
    const double dist = static_cast<double>(EdrDistanceBoundedWith(
        kernel, scratch, query, db_[id], epsilon_, dp_bound));
    ++computed;
    stages.CountDp(query.size(), db_[id].size());
    if (dist > static_cast<double>(dp_bound)) {
      stages.Bump(&StageCounters::dp_early_abandoned);
    }
    result.Offer(id, dist);
  }
  refine_span.End();

  const auto stop = std::chrono::steady_clock::now();
  KnnResult out;
  out.neighbors = std::move(result).TakeNeighbors();
  out.stats.db_size = db_.size();
  out.stats.edr_computed = computed;
  stages.FinalizeNotVisited(db_.size());
  out.stats.stages = stages;
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  out.stats.filter_seconds =
      std::chrono::duration<double>(filter_done - start).count();
  out.stats.refine_seconds =
      std::chrono::duration<double>(stop - filter_done).count();
  out.trace = std::move(trace);
  RecordQueryMetrics(out.stats);
  return out;
}

}  // namespace edr
