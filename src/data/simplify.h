#ifndef EDR_DATA_SIMPLIFY_H_
#define EDR_DATA_SIMPLIFY_H_

#include <cstddef>

#include "core/dataset.h"
#include "core/trajectory.h"

namespace edr {

/// Trajectory simplification — the standard preprocessing step of
/// trajectory databases (tracking pipelines emit far more samples than the
/// movement shape needs). Simplification interacts with EDR in a
/// well-defined way: it changes lengths, so distances change, but the
/// *shape* — and therefore the k-NN ranking — degrades gracefully; the
/// `bench_ablation` binary quantifies the trade-off.

/// Douglas-Peucker polyline simplification: keeps every point whose
/// perpendicular distance from the chord of its segment exceeds
/// `tolerance`. Endpoints are always kept. Returns the input unchanged
/// when it has fewer than three points. Label and id are preserved.
Trajectory SimplifyDouglasPeucker(const Trajectory& t, double tolerance);

/// Uniform downsampling: keeps every `stride`-th point plus the final
/// point (so endpoints survive). `stride <= 1` returns the input.
Trajectory Downsample(const Trajectory& t, size_t stride);

/// Perpendicular distance from `p` to the segment (a, b); the distance to
/// `a` when the segment is degenerate. Exposed for tests.
double SegmentDistance(Point2 p, Point2 a, Point2 b);

/// Applies Douglas-Peucker to every trajectory of a dataset.
TrajectoryDataset SimplifyAll(const TrajectoryDataset& db, double tolerance);

}  // namespace edr

#endif  // EDR_DATA_SIMPLIFY_H_
