#ifndef EDR_DATA_IO_H_
#define EDR_DATA_IO_H_

#include <string>

#include "core/dataset.h"
#include "core/status.h"

namespace edr {

/// Writes a dataset to a CSV file with one sample per line:
///
///   traj_index,label,x,y
///
/// Consecutive lines with the same traj_index form one trajectory; a label
/// of -1 means unlabeled. Values are written with enough precision to
/// round-trip doubles.
Status SaveCsv(const TrajectoryDataset& db, const std::string& path);

/// Reads a dataset written by SaveCsv (or produced externally in the same
/// format). Lines starting with '#' and blank lines are skipped.
/// Trajectory indexes must be grouped (all samples of a trajectory on
/// consecutive lines) but need not be dense or ordered.
Result<TrajectoryDataset> LoadCsv(const std::string& path);

/// Writes a dataset in a compact little-endian binary format (roughly 3x
/// smaller and an order of magnitude faster to parse than CSV):
///
///   magic "EDRT"  u32 version  u64 count
///   per trajectory: i32 label  u64 length  f64 x,y pairs
Status SaveBinary(const TrajectoryDataset& db, const std::string& path);

/// Reads a dataset written by SaveBinary. Fails with kInvalidArgument on
/// a bad magic/version and kIoError on truncation.
Result<TrajectoryDataset> LoadBinary(const std::string& path);

}  // namespace edr

#endif  // EDR_DATA_IO_H_
