#ifndef EDR_DATA_FEATURES_H_
#define EDR_DATA_FEATURES_H_

#include "core/trajectory.h"

namespace edr {

/// Motion-feature transforms. Similarity in raw coordinates is
/// location-sensitive; many retrieval tasks instead want invariance to
/// *where* the motion happened (maneuver mining, gesture search). These
/// transforms re-express a trajectory so that the existing distance
/// functions and subtrajectory search gain those invariances:
///
///  - displacement sequence: translation invariance,
///  - heading sequence: translation + speed-magnitude invariance
///    (cf. the rotation-invariant angle representations of Vlachos et
///    al., which the paper discusses in related work),
///  - cumulative path length: a 1-D profile of progress over time.

/// Per-step displacement vectors [(s2 - s1), ..., (sn - s(n-1))]; length
/// n-1. Matching displacements under EDR makes subtrajectory search
/// translation invariant.
Trajectory ToDisplacements(const Trajectory& t);

/// Per-step unit headings (displacement normalized to length 1; zero
/// steps produce a zero vector); length n-1. Matching headings is
/// invariant to translation and to speed magnitude.
Trajectory ToHeadings(const Trajectory& t);

/// Cumulative path length profile as a 1-D trajectory [(L1, 0), ...] with
/// L1 = 0; length n. Encodes the speed profile irrespective of direction.
Trajectory ToCumulativeLength(const Trajectory& t);

/// Total polyline length of the trajectory.
double PathLength(const Trajectory& t);

}  // namespace edr

#endif  // EDR_DATA_FEATURES_H_
