#include "data/features.h"

#include <cmath>

namespace edr {

Trajectory ToDisplacements(const Trajectory& t) {
  Trajectory out;
  for (size_t i = 1; i < t.size(); ++i) {
    out.Append(t[i].x - t[i - 1].x, t[i].y - t[i - 1].y);
  }
  out.set_label(t.label());
  out.set_id(t.id());
  return out;
}

Trajectory ToHeadings(const Trajectory& t) {
  Trajectory out;
  for (size_t i = 1; i < t.size(); ++i) {
    const double dx = t[i].x - t[i - 1].x;
    const double dy = t[i].y - t[i - 1].y;
    const double len = std::sqrt(dx * dx + dy * dy);
    if (len > 0.0) {
      out.Append(dx / len, dy / len);
    } else {
      out.Append(0.0, 0.0);  // Stationary step: no heading.
    }
  }
  out.set_label(t.label());
  out.set_id(t.id());
  return out;
}

Trajectory ToCumulativeLength(const Trajectory& t) {
  Trajectory out;
  double total = 0.0;
  if (!t.empty()) out.Append(0.0, 0.0);
  for (size_t i = 1; i < t.size(); ++i) {
    total += L2Dist(t[i], t[i - 1]);
    out.Append(total, 0.0);
  }
  out.set_label(t.label());
  out.set_id(t.id());
  return out;
}

double PathLength(const Trajectory& t) {
  double total = 0.0;
  for (size_t i = 1; i < t.size(); ++i) total += L2Dist(t[i], t[i - 1]);
  return total;
}

}  // namespace edr
