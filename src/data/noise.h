#ifndef EDR_DATA_NOISE_H_
#define EDR_DATA_NOISE_H_

#include "core/dataset.h"
#include "core/rng.h"
#include "core/trajectory.h"

namespace edr {

/// Parameters of the Table 2 corruption protocol (Section 3.2): the paper
/// adds "interpolated Gaussian noise (about 10-20% of the length of
/// trajectories) and local time shifting" using the program of Vlachos et
/// al. [37], then generates 50 distinct corrupted data sets per seed set.
struct NoiseOptions {
  /// Fraction of the trajectory length inserted as noise elements
  /// (drawn uniformly in [min_fraction, max_fraction] per trajectory).
  double min_fraction = 0.10;
  double max_fraction = 0.20;
  /// Magnitude of an outlier in units of the per-trajectory standard
  /// deviation; outliers must be "significantly different from the values
  /// near them", so this is large.
  double outlier_sigma = 5.0;
};

/// Inserts interpolated Gaussian noise into a trajectory: noise elements
/// are interpolated between neighboring samples and displaced by a large
/// Gaussian offset, modelling sensor failures / detection errors.
Trajectory AddInterpolatedGaussianNoise(const Trajectory& t,
                                        const NoiseOptions& options,
                                        Rng& rng);

/// Parameters for local time shifting. The defaults mirror the regime of
/// the paper's shifting program: many *local* speed changes that shift
/// sub-paths in time without grossly distorting the overall duration.
struct TimeShiftOptions {
  /// Number of segments the trajectory is cut into; each segment is
  /// independently stretched or compressed.
  int segments = 8;
  /// Segment length scale factors are drawn in [min_scale, max_scale].
  double min_scale = 0.7;
  double max_scale = 1.4;
};

/// Applies local time shifting: the trajectory is cut into segments and
/// each is linearly resampled to a randomly scaled length, so sub-paths
/// shift in time while the spatial shape is preserved.
Trajectory AddLocalTimeShifting(const Trajectory& t,
                                const TimeShiftOptions& options, Rng& rng);

/// Linearly resamples a trajectory to `new_length` samples (the label is
/// preserved). Used by time shifting and by tests.
Trajectory ResampleLinear(const Trajectory& t, size_t new_length);

/// Applies both corruptions (noise then shifting) to every trajectory of a
/// labeled dataset — one of the paper's "50 distinct data sets that
/// include noise and time shifting" when called with 50 different seeds.
TrajectoryDataset CorruptDataset(const TrajectoryDataset& db,
                                 const NoiseOptions& noise,
                                 const TimeShiftOptions& shift,
                                 uint64_t seed);

}  // namespace edr

#endif  // EDR_DATA_NOISE_H_
