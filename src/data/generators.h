#ifndef EDR_DATA_GENERATORS_H_
#define EDR_DATA_GENERATORS_H_

#include <cstdint>

#include "core/dataset.h"

namespace edr {

/// Length distributions for the random-walk sets of Section 5.2 ("RandU"
/// uniform, "RandN" normal).
enum class LengthDistribution { kUniform, kNormal };

/// Parameters for GenRandomWalk.
struct RandomWalkOptions {
  size_t count = 1000;
  size_t min_length = 30;
  size_t max_length = 256;
  LengthDistribution length_distribution = LengthDistribution::kUniform;
  /// Standard deviation of each step.
  double step_sigma = 1.0;
  uint64_t seed = 1;
};

/// Two-dimensional Gaussian random walks, the synthetic workload used for
/// the near-triangle experiments (Table 3) and the large combined-method
/// sweep (Figures 12-13).
TrajectoryDataset GenRandomWalk(const RandomWalkOptions& options);

/// Stand-in for the Cameramouse data set (Gips et al.): 5 "word" classes,
/// `per_class` finger-track instances each, built from per-class control
/// point strokes with per-instance speed/jitter variation. Lengths
/// ~110-170. Labels are 0..4.
TrajectoryDataset GenCameraMouseLike(size_t per_class = 3, uint64_t seed = 7);

/// Stand-in for the UCI Australian Sign Language set: `classes` sign
/// classes, `per_class` instances, Lissajous-family base shapes with
/// per-instance phase/speed/amplitude jitter and varying sampling rates.
/// Lengths 60-140. Labels are 0..classes-1. The paper's efficacy tests use
/// 10 x 5; its pruning tests use the 710-trajectory concatenation
/// (use classes=10, per_class=71).
TrajectoryDataset GenAslLike(size_t classes = 10, size_t per_class = 5,
                             uint64_t seed = 11);

/// Stand-in for the Kungfu motion set: `count` trajectories of body-joint
/// positions during kung-fu moves, all of fixed `length` (640 in the
/// paper). Built from multi-harmonic oscillations with per-trajectory
/// variation. Unlabeled.
TrajectoryDataset GenKungfuLike(size_t count = 495, size_t length = 640,
                                uint64_t seed = 13);

/// Stand-in for the Slip motion set: `count` trajectories of a person
/// slipping down and standing up, fixed `length` (400 in the paper):
/// a fast downward drift followed by recovery, plus jitter. Unlabeled.
TrajectoryDataset GenSlipLike(size_t count = 495, size_t length = 400,
                              uint64_t seed = 17);

/// Stand-in for the NHL player-tracking set: rink-bounded drifting walks
/// (reflecting at the 200 x 85 board), lengths uniform in
/// [min_length, max_length] (30-256 in the paper). Unlabeled.
TrajectoryDataset GenNhlLike(size_t count = 5000, size_t min_length = 30,
                             size_t max_length = 256, uint64_t seed = 19);

/// Stand-in for the SIGKDD'03 mixed set: an even mixture of random walks,
/// Lissajous curves, and piecewise-linear drifts with widely varying
/// lengths (60-2000 in the paper; scale down for quick runs). Unlabeled.
TrajectoryDataset GenMixedLike(size_t count = 32768, size_t min_length = 60,
                               size_t max_length = 2000, uint64_t seed = 23);

}  // namespace edr

#endif  // EDR_DATA_GENERATORS_H_
