#include "data/noise.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace edr {

Trajectory AddInterpolatedGaussianNoise(const Trajectory& t,
                                        const NoiseOptions& options,
                                        Rng& rng) {
  if (t.size() < 2) return t;
  const double fraction =
      rng.Uniform(options.min_fraction, options.max_fraction);
  const size_t insertions = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(t.size())));
  const Point2 sigma = t.StdDev();
  const double sx = std::max(sigma.x, 1e-9) * options.outlier_sigma;
  const double sy = std::max(sigma.y, 1e-9) * options.outlier_sigma;

  std::vector<Point2> points = t.points();
  for (size_t i = 0; i < insertions; ++i) {
    const size_t at = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(points.size()) - 1));
    const Point2 mid = (points[at - 1] + points[at]) * 0.5;
    const Point2 outlier{mid.x + rng.Gaussian(0.0, sx),
                         mid.y + rng.Gaussian(0.0, sy)};
    points.insert(points.begin() + static_cast<long>(at), outlier);
  }
  Trajectory out(std::move(points), t.label());
  out.set_id(t.id());
  return out;
}

Trajectory ResampleLinear(const Trajectory& t, size_t new_length) {
  if (t.empty() || new_length == 0) return Trajectory({}, t.label());
  std::vector<Point2> points;
  points.reserve(new_length);
  if (t.size() == 1 || new_length == 1) {
    points.assign(new_length, t[0]);
  } else {
    const double scale = static_cast<double>(t.size() - 1) /
                         static_cast<double>(new_length - 1);
    for (size_t i = 0; i < new_length; ++i) {
      const double pos = static_cast<double>(i) * scale;
      const size_t lo =
          std::min(static_cast<size_t>(pos), t.size() - 2);
      const double frac = pos - static_cast<double>(lo);
      points.push_back(t[lo] * (1.0 - frac) + t[lo + 1] * frac);
    }
  }
  Trajectory out(std::move(points), t.label());
  out.set_id(t.id());
  return out;
}

Trajectory AddLocalTimeShifting(const Trajectory& t,
                                const TimeShiftOptions& options, Rng& rng) {
  const int segments = std::max(1, options.segments);
  if (t.size() < static_cast<size_t>(segments) * 2) return t;

  std::vector<Point2> points;
  points.reserve(t.size() * 3 / 2);
  const size_t seg_len = t.size() / static_cast<size_t>(segments);
  for (int s = 0; s < segments; ++s) {
    const size_t begin = static_cast<size_t>(s) * seg_len;
    const size_t end =
        s == segments - 1 ? t.size() : begin + seg_len;
    Trajectory segment(
        std::vector<Point2>(t.points().begin() + static_cast<long>(begin),
                            t.points().begin() + static_cast<long>(end)));
    const double scale = rng.Uniform(options.min_scale, options.max_scale);
    const size_t new_len = std::max<size_t>(
        2, static_cast<size_t>(std::llround(
               scale * static_cast<double>(segment.size()))));
    const Trajectory resampled = ResampleLinear(segment, new_len);
    points.insert(points.end(), resampled.points().begin(),
                  resampled.points().end());
  }
  Trajectory out(std::move(points), t.label());
  out.set_id(t.id());
  return out;
}

TrajectoryDataset CorruptDataset(const TrajectoryDataset& db,
                                 const NoiseOptions& noise,
                                 const TimeShiftOptions& shift,
                                 uint64_t seed) {
  TrajectoryDataset out(db.name() + "_corrupted");
  Rng rng(seed);
  for (const Trajectory& t : db) {
    Trajectory corrupted = AddInterpolatedGaussianNoise(t, noise, rng);
    corrupted = AddLocalTimeShifting(corrupted, shift, rng);
    out.Add(std::move(corrupted));
  }
  return out;
}

}  // namespace edr
