#include "data/simplify.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace edr {

double SegmentDistance(Point2 p, Point2 a, Point2 b) {
  const Point2 ab = b - a;
  const double len_sq = ab.x * ab.x + ab.y * ab.y;
  if (len_sq == 0.0) return L2Dist(p, a);
  // Project p onto the segment, clamped to its extent.
  const Point2 ap = p - a;
  const double t =
      std::clamp((ap.x * ab.x + ap.y * ab.y) / len_sq, 0.0, 1.0);
  const Point2 closest = a + ab * t;
  return L2Dist(p, closest);
}

namespace {

// Iterative Douglas-Peucker over index ranges (recursion depth on
// adversarial inputs could be linear, so use an explicit stack).
void MarkKept(const std::vector<Point2>& points, double tolerance,
              std::vector<bool>& keep) {
  std::vector<std::pair<size_t, size_t>> stack{{0, points.size() - 1}};
  while (!stack.empty()) {
    const auto [lo, hi] = stack.back();
    stack.pop_back();
    if (hi <= lo + 1) continue;
    double worst = -1.0;
    size_t worst_index = lo;
    for (size_t i = lo + 1; i < hi; ++i) {
      const double d = SegmentDistance(points[i], points[lo], points[hi]);
      if (d > worst) {
        worst = d;
        worst_index = i;
      }
    }
    if (worst > tolerance) {
      keep[worst_index] = true;
      stack.push_back({lo, worst_index});
      stack.push_back({worst_index, hi});
    }
  }
}

}  // namespace

Trajectory SimplifyDouglasPeucker(const Trajectory& t, double tolerance) {
  if (t.size() < 3) return t;
  std::vector<bool> keep(t.size(), false);
  keep.front() = true;
  keep.back() = true;
  MarkKept(t.points(), tolerance, keep);

  std::vector<Point2> kept;
  for (size_t i = 0; i < t.size(); ++i) {
    if (keep[i]) kept.push_back(t[i]);
  }
  Trajectory out(std::move(kept), t.label());
  out.set_id(t.id());
  return out;
}

Trajectory Downsample(const Trajectory& t, size_t stride) {
  if (stride <= 1 || t.size() <= 2) return t;
  std::vector<Point2> kept;
  kept.reserve(t.size() / stride + 2);
  for (size_t i = 0; i < t.size(); i += stride) kept.push_back(t[i]);
  if ((t.size() - 1) % stride != 0) kept.push_back(t[t.size() - 1]);
  Trajectory out(std::move(kept), t.label());
  out.set_id(t.id());
  return out;
}

TrajectoryDataset SimplifyAll(const TrajectoryDataset& db, double tolerance) {
  TrajectoryDataset out(db.name() + "_simplified");
  for (const Trajectory& t : db) {
    out.Add(SimplifyDouglasPeucker(t, tolerance));
  }
  return out;
}

}  // namespace edr
