#include "data/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

static_assert(sizeof(edr::Point2) == 2 * sizeof(double),
              "Point2 must be two packed doubles for binary I/O");

namespace edr {

Status SaveCsv(const TrajectoryDataset& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "# traj_index,label,x,y\n";
  char line[128];
  for (size_t i = 0; i < db.size(); ++i) {
    const Trajectory& t = db[i];
    for (const Point2& p : t) {
      std::snprintf(line, sizeof(line), "%zu,%d,%.17g,%.17g\n", i, t.label(),
                    p.x, p.y);
      out << line;
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<TrajectoryDataset> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  TrajectoryDataset db(path);
  bool have_current = false;
  long current_index = -1;
  Trajectory current;

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    long index = 0;
    int label = -1;
    double x = 0.0;
    double y = 0.0;
    if (std::sscanf(line.c_str(), "%ld,%d,%lf,%lf", &index, &label, &x, &y) !=
        4) {
      return Status::InvalidArgument("malformed CSV at " + path + ":" +
                                     std::to_string(line_no) + ": " + line);
    }
    if (!have_current || index != current_index) {
      if (have_current) db.Add(std::move(current));
      current = Trajectory();
      current.set_label(label);
      current_index = index;
      have_current = true;
    }
    current.Append(x, y);
  }
  if (have_current) db.Add(std::move(current));
  return db;
}

namespace {
constexpr char kBinaryMagic[4] = {'E', 'D', 'R', 'T'};
constexpr uint32_t kBinaryVersion = 1;
}  // namespace

Status SaveBinary(const TrajectoryDataset& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);

  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  out.write(reinterpret_cast<const char*>(&kBinaryVersion),
            sizeof(kBinaryVersion));
  const uint64_t count = db.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Trajectory& t : db) {
    const int32_t label = t.label();
    const uint64_t length = t.size();
    out.write(reinterpret_cast<const char*>(&label), sizeof(label));
    out.write(reinterpret_cast<const char*>(&length), sizeof(length));
    for (const Point2& p : t) {
      out.write(reinterpret_cast<const char*>(&p.x), sizeof(p.x));
      out.write(reinterpret_cast<const char*>(&p.y), sizeof(p.y));
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<TrajectoryDataset> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    return Status::InvalidArgument("not a trajectory file: " + path);
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kBinaryVersion) {
    return Status::InvalidArgument("unsupported version in " + path);
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return Status::IoError("truncated header: " + path);

  TrajectoryDataset db(path);
  for (uint64_t i = 0; i < count; ++i) {
    int32_t label = -1;
    uint64_t length = 0;
    in.read(reinterpret_cast<char*>(&label), sizeof(label));
    in.read(reinterpret_cast<char*>(&length), sizeof(length));
    if (!in) return Status::IoError("truncated trajectory header: " + path);
    // Cap per-trajectory allocations before trusting the header.
    constexpr uint64_t kMaxLength = 1ULL << 30;
    if (length > kMaxLength) {
      return Status::InvalidArgument("implausible trajectory length in " +
                                     path);
    }
    std::vector<Point2> points(length);
    in.read(reinterpret_cast<char*>(points.data()),
            static_cast<std::streamsize>(length * sizeof(Point2)));
    if (!in) return Status::IoError("truncated payload: " + path);
    db.Add(Trajectory(std::move(points), label));
  }
  return db;
}

}  // namespace edr
