#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/rng.h"
#include "data/noise.h"

namespace edr {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

size_t DrawLength(Rng& rng, size_t min_length, size_t max_length,
                  LengthDistribution distribution) {
  if (max_length <= min_length) return min_length;
  if (distribution == LengthDistribution::kUniform) {
    return static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(min_length), static_cast<int64_t>(max_length)));
  }
  // Normal: centered between the bounds, sigma = range/6 (3-sigma rule),
  // clamped into the valid range.
  const double mean =
      0.5 * (static_cast<double>(min_length) + static_cast<double>(max_length));
  const double sigma =
      (static_cast<double>(max_length) - static_cast<double>(min_length)) / 6.0;
  const double drawn = rng.Gaussian(mean, sigma);
  return static_cast<size_t>(std::clamp(
      drawn, static_cast<double>(min_length), static_cast<double>(max_length)));
}

/// Catmull-Rom interpolation through control points at parameter u in
/// [0, 1] over the whole chain; endpoints are duplicated.
Point2 CatmullRom(const std::vector<Point2>& control, double u) {
  const size_t segments = control.size() - 1;
  const double scaled = u * static_cast<double>(segments);
  size_t seg = std::min(static_cast<size_t>(scaled), segments - 1);
  const double t = scaled - static_cast<double>(seg);

  const auto at = [&control](long i) {
    i = std::clamp<long>(i, 0, static_cast<long>(control.size()) - 1);
    return control[static_cast<size_t>(i)];
  };
  const Point2 p0 = at(static_cast<long>(seg) - 1);
  const Point2 p1 = at(static_cast<long>(seg));
  const Point2 p2 = at(static_cast<long>(seg) + 1);
  const Point2 p3 = at(static_cast<long>(seg) + 2);

  const double t2 = t * t;
  const double t3 = t2 * t;
  const auto blend = [&](double a0, double a1, double a2, double a3) {
    return 0.5 * ((2.0 * a1) + (-a0 + a2) * t +
                  (2.0 * a0 - 5.0 * a1 + 4.0 * a2 - a3) * t2 +
                  (-a0 + 3.0 * a1 - 3.0 * a2 + a3) * t3);
  };
  return {blend(p0.x, p1.x, p2.x, p3.x), blend(p0.y, p1.y, p2.y, p3.y)};
}

}  // namespace

TrajectoryDataset GenRandomWalk(const RandomWalkOptions& options) {
  TrajectoryDataset db("random_walk");
  Rng rng(options.seed);
  for (size_t i = 0; i < options.count; ++i) {
    const size_t length = DrawLength(rng, options.min_length,
                                     options.max_length,
                                     options.length_distribution);
    Trajectory t;
    Point2 pos{rng.Gaussian(0.0, options.step_sigma),
               rng.Gaussian(0.0, options.step_sigma)};
    for (size_t j = 0; j < length; ++j) {
      t.Append(pos);
      pos.x += rng.Gaussian(0.0, options.step_sigma);
      pos.y += rng.Gaussian(0.0, options.step_sigma);
    }
    db.Add(std::move(t));
  }
  return db;
}

TrajectoryDataset GenCameraMouseLike(size_t per_class, uint64_t seed) {
  TrajectoryDataset db("cameramouse_like");
  constexpr size_t kClasses = 5;
  Rng class_rng(seed);

  // Per-class stroke skeletons: 6-9 control points of a "written word".
  std::vector<std::vector<Point2>> skeletons;
  for (size_t c = 0; c < kClasses; ++c) {
    const size_t n_control = static_cast<size_t>(class_rng.UniformInt(6, 9));
    std::vector<Point2> control;
    double x = 0.0;
    for (size_t i = 0; i < n_control; ++i) {
      // Writing advances left-to-right with vertical excursions.
      x += class_rng.Uniform(0.5, 1.5);
      control.push_back({x, class_rng.Uniform(-1.5, 1.5)});
    }
    skeletons.push_back(std::move(control));
  }

  // The duration of writing a word is a property of the word: instances
  // of one class share a base length (with small per-instance variation),
  // as in the real finger-tracking data.
  std::vector<int64_t> base_lengths;
  for (size_t c = 0; c < kClasses; ++c) {
    base_lengths.push_back(class_rng.UniformInt(120, 160));
  }

  Rng rng(seed ^ 0xC0FFEEULL);
  for (size_t c = 0; c < kClasses; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      const size_t length = static_cast<size_t>(
          base_lengths[c] + rng.UniformInt(-10, 10));
      // Per-instance variation: slight spatial jitter of the skeleton and
      // a nonlinear pen speed introducing local time shifting.
      std::vector<Point2> control = skeletons[c];
      for (Point2& p : control) {
        p.x += rng.Gaussian(0.0, 0.06);
        p.y += rng.Gaussian(0.0, 0.06);
      }
      const double speed_phase = rng.Uniform(0.0, kTwoPi);
      const double speed_depth = rng.Uniform(0.1, 0.35);
      Trajectory t;
      for (size_t j = 0; j < length; ++j) {
        double u = static_cast<double>(j) / static_cast<double>(length - 1);
        // Monotone time warp: u + depth * sin-modulation.
        u += speed_depth / kTwoPi *
             (std::sin(kTwoPi * u + speed_phase) - std::sin(speed_phase));
        u = std::clamp(u, 0.0, 1.0);
        Point2 p = CatmullRom(control, u);
        p.x += rng.Gaussian(0.0, 0.015);
        p.y += rng.Gaussian(0.0, 0.015);
        t.Append(p);
      }
      t.set_label(static_cast<int>(c));
      db.Add(std::move(t));
    }
  }
  return db;
}

TrajectoryDataset GenAslLike(size_t classes, size_t per_class,
                             uint64_t seed) {
  TrajectoryDataset db("asl_like");
  Rng class_rng(seed);

  struct SignShape {
    double fx, fy;      // Lissajous frequencies
    double phx, phy;    // phases
    double ax, ay;      // amplitudes
    double drift_x, drift_y;
  };
  std::vector<SignShape> shapes;
  for (size_t c = 0; c < classes; ++c) {
    SignShape s;
    s.fx = class_rng.Uniform(0.8, 2.6);
    s.fy = class_rng.Uniform(0.8, 2.6);
    s.phx = class_rng.Uniform(0.0, kTwoPi);
    s.phy = class_rng.Uniform(0.0, kTwoPi);
    s.ax = class_rng.Uniform(0.6, 1.4);
    s.ay = class_rng.Uniform(0.6, 1.4);
    s.drift_x = class_rng.Uniform(-0.4, 0.4);
    s.drift_y = class_rng.Uniform(-0.4, 0.4);
    shapes.push_back(s);
  }
  // Signing a given sign takes a characteristic time: the length is a
  // class property with small per-instance variation, as in the UCI data.
  std::vector<int64_t> base_lengths;
  for (size_t c = 0; c < classes; ++c) {
    base_lengths.push_back(class_rng.UniformInt(68, 132));
  }

  Rng rng(seed ^ 0xA51A51ULL);
  for (size_t c = 0; c < classes; ++c) {
    const SignShape& s = shapes[c];
    for (size_t i = 0; i < per_class; ++i) {
      const size_t length = static_cast<size_t>(
          base_lengths[c] + rng.UniformInt(-8, 8));
      const double amp_jitter = rng.Uniform(0.9, 1.1);
      const double phase_jitter = rng.Gaussian(0.0, 0.35);
      const double speed = rng.Uniform(0.75, 1.25);
      Trajectory t;
      for (size_t j = 0; j < length; ++j) {
        const double u =
            speed * static_cast<double>(j) / static_cast<double>(length - 1);
        Point2 p;
        p.x = amp_jitter * s.ax * std::sin(kTwoPi * s.fx * u + s.phx +
                                           phase_jitter) +
              s.drift_x * u;
        p.y = amp_jitter * s.ay * std::sin(kTwoPi * s.fy * u + s.phy +
                                           phase_jitter) +
              s.drift_y * u;
        p.x += rng.Gaussian(0.0, 0.02);
        p.y += rng.Gaussian(0.0, 0.02);
        t.Append(p);
      }
      t.set_label(static_cast<int>(c));
      db.Add(std::move(t));
    }
  }
  return db;
}

TrajectoryDataset GenKungfuLike(size_t count, size_t length, uint64_t seed) {
  TrajectoryDataset db("kungfu_like");
  Rng rng(seed);

  // Motion-capture corpora are highly clustered: the same moves recur many
  // times. Draw a pool of prototype moves (multi-harmonic joint motions)
  // and emit each trajectory as a jittered, locally time-warped instance
  // of one prototype, keeping the fixed capture length.
  struct Move {
    double fx[3], fy[3], ax[3], ay[3], ph[3];
  };
  const size_t num_moves = std::max<size_t>(1, count / 32);
  std::vector<Move> moves(num_moves);
  for (Move& m : moves) {
    for (int h = 0; h < 3; ++h) {
      m.fx[h] = rng.Uniform(0.5, 4.0);
      m.fy[h] = rng.Uniform(0.5, 4.0);
      m.ax[h] = rng.Uniform(0.2, 1.0) / (h + 1);
      m.ay[h] = rng.Uniform(0.2, 1.0) / (h + 1);
      m.ph[h] = rng.Uniform(0.0, kTwoPi);
    }
  }

  for (size_t i = 0; i < count; ++i) {
    const Move& m = moves[i % num_moves];
    const double warp_phase = rng.Uniform(0.0, kTwoPi);
    const double warp_depth = rng.Uniform(0.05, 0.2);
    const double amp_jitter = rng.Uniform(0.95, 1.05);
    const double phase_jitter = rng.Gaussian(0.0, 0.05);
    Trajectory t;
    for (size_t j = 0; j < length; ++j) {
      double u = static_cast<double>(j) / static_cast<double>(length);
      // Monotone local time warp: each performance of the move speeds up
      // and slows down differently.
      u += warp_depth / kTwoPi *
           (std::sin(kTwoPi * u + warp_phase) - std::sin(warp_phase));
      Point2 p{0.0, 0.0};
      for (int h = 0; h < 3; ++h) {
        p.x += amp_jitter * m.ax[h] *
               std::sin(kTwoPi * m.fx[h] * u + m.ph[h] + phase_jitter);
        p.y += amp_jitter * m.ay[h] *
               std::cos(kTwoPi * m.fy[h] * u + m.ph[h] + phase_jitter);
      }
      p.x += rng.Gaussian(0.0, 0.01);
      p.y += rng.Gaussian(0.0, 0.01);
      t.Append(p);
    }
    db.Add(std::move(t));
  }
  return db;
}

TrajectoryDataset GenSlipLike(size_t count, size_t length, uint64_t seed) {
  TrajectoryDataset db("slip_like");
  Rng rng(seed);

  // Prototype slip-and-recover motions; instances jitter the fall moment,
  // depth, and recovery speed slightly, as repeated captures of the same
  // staged fall would.
  struct Slip {
    double at, depth, recover, drift;
  };
  const size_t num_protos = std::max<size_t>(1, count / 32);
  std::vector<Slip> protos(num_protos);
  for (Slip& p : protos) {
    p.at = rng.Uniform(0.2, 0.5);
    p.depth = rng.Uniform(1.0, 2.5);
    p.recover = rng.Uniform(1.5, 4.0);
    p.drift = rng.Uniform(-0.5, 0.5);
  }

  for (size_t i = 0; i < count; ++i) {
    const Slip& proto = protos[i % num_protos];
    const double at = proto.at + rng.Gaussian(0.0, 0.01);
    const double depth = proto.depth * rng.Uniform(0.95, 1.05);
    const double recover = proto.recover * rng.Uniform(0.95, 1.05);
    Trajectory t;
    for (size_t j = 0; j < length; ++j) {
      const double u = static_cast<double>(j) / static_cast<double>(length);
      double y = 1.0;
      if (u >= at) {
        const double since = u - at;
        y = 1.0 - depth * std::exp(-recover * since * 4.0) *
                      (1.0 - std::exp(-40.0 * since));
      }
      const double x = proto.drift * u + rng.Gaussian(0.0, 0.01);
      t.Append({x, y + rng.Gaussian(0.0, 0.01)});
    }
    db.Add(std::move(t));
  }
  return db;
}

namespace {

/// One rink-bounded skating run (shared by prototypes and fresh walks).
Trajectory SkateRun(Rng& rng, size_t length) {
  constexpr double kRinkX = 200.0;
  constexpr double kRinkY = 85.0;
  Trajectory t;
  Point2 pos{rng.Uniform(0.0, kRinkX), rng.Uniform(0.0, kRinkY)};
  Point2 vel{rng.Gaussian(0.0, 2.0), rng.Gaussian(0.0, 1.5)};
  for (size_t j = 0; j < length; ++j) {
    t.Append(pos);
    // Skating: momentum plus random acceleration, reflected at boards.
    vel.x = 0.9 * vel.x + rng.Gaussian(0.0, 0.8);
    vel.y = 0.9 * vel.y + rng.Gaussian(0.0, 0.6);
    pos.x += vel.x;
    pos.y += vel.y;
    if (pos.x < 0.0) {
      pos.x = -pos.x;
      vel.x = -vel.x;
    }
    if (pos.x > kRinkX) {
      pos.x = 2.0 * kRinkX - pos.x;
      vel.x = -vel.x;
    }
    if (pos.y < 0.0) {
      pos.y = -pos.y;
      vel.y = -vel.y;
    }
    if (pos.y > kRinkY) {
      pos.y = 2.0 * kRinkY - pos.y;
      vel.y = -vel.y;
    }
  }
  return t;
}

/// A noisy, locally time-shifted replay of a prototype run, clamped to the
/// rink and to the configured length range.
Trajectory SkateVariant(const Trajectory& proto, Rng& rng, size_t min_length,
                        size_t max_length) {
  const double scale = rng.Uniform(0.85, 1.18);
  size_t new_len = static_cast<size_t>(std::llround(
      scale * static_cast<double>(proto.size())));
  new_len = std::clamp(new_len, min_length, max_length);
  Trajectory t = ResampleLinear(proto, new_len);
  for (Point2& p : t.mutable_points()) {
    p.x = std::clamp(p.x + rng.Gaussian(0.0, 1.0), 0.0, 200.0);
    p.y = std::clamp(p.y + rng.Gaussian(0.0, 1.0), 0.0, 85.0);
  }
  return t;
}

}  // namespace

TrajectoryDataset GenNhlLike(size_t count, size_t min_length,
                             size_t max_length, uint64_t seed) {
  TrajectoryDataset db("nhl_like");
  Rng rng(seed);
  // Players repeat characteristic shifts: a pool of prototype runs, each
  // instanced several times with tracking noise and small speed changes.
  const size_t num_protos = std::max<size_t>(1, count / 25);
  std::vector<Trajectory> protos;
  protos.reserve(num_protos);
  for (size_t i = 0; i < num_protos; ++i) {
    protos.push_back(SkateRun(
        rng, DrawLength(rng, min_length, max_length,
                        LengthDistribution::kUniform)));
  }
  for (size_t i = 0; i < count; ++i) {
    db.Add(SkateVariant(protos[i % num_protos], rng, min_length, max_length));
  }
  return db;
}

TrajectoryDataset GenMixedLike(size_t count, size_t min_length,
                               size_t max_length, uint64_t seed) {
  TrajectoryDataset db("mixed_like");
  Rng rng(seed);

  // Prototype pool spanning three families (random walks, Lissajous
  // curves, piecewise-linear drifts), each instanced with jitter and a
  // mild length change, mirroring the clustered nature of the SIGKDD'03
  // mixed corpus.
  const size_t num_protos = std::max<size_t>(1, count / 25);
  std::vector<Trajectory> protos;
  protos.reserve(num_protos);
  for (size_t i = 0; i < num_protos; ++i) {
    const size_t length = DrawLength(rng, min_length, max_length,
                                     LengthDistribution::kUniform);
    Trajectory t;
    switch (i % 3) {
      case 0: {  // Random walk.
        Point2 pos{0.0, 0.0};
        for (size_t j = 0; j < length; ++j) {
          t.Append(pos);
          pos.x += rng.Gaussian(0.0, 1.0);
          pos.y += rng.Gaussian(0.0, 1.0);
        }
        break;
      }
      case 1: {  // Lissajous curve.
        const double fx = rng.Uniform(0.5, 3.0);
        const double fy = rng.Uniform(0.5, 3.0);
        const double ph = rng.Uniform(0.0, kTwoPi);
        for (size_t j = 0; j < length; ++j) {
          const double u =
              static_cast<double>(j) / static_cast<double>(length);
          t.Append({std::sin(kTwoPi * fx * u + ph) + rng.Gaussian(0.0, 0.02),
                    std::sin(kTwoPi * fy * u) + rng.Gaussian(0.0, 0.02)});
        }
        break;
      }
      default: {  // Piecewise-linear drift.
        Point2 pos{0.0, 0.0};
        Point2 dir{rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
        for (size_t j = 0; j < length; ++j) {
          if (j % 50 == 0) {
            dir = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
          }
          t.Append(pos);
          pos.x += dir.x + rng.Gaussian(0.0, 0.05);
          pos.y += dir.y + rng.Gaussian(0.0, 0.05);
        }
        break;
      }
    }
    protos.push_back(std::move(t));
  }

  for (size_t i = 0; i < count; ++i) {
    const Trajectory& proto = protos[i % num_protos];
    const double scale = rng.Uniform(0.9, 1.12);
    size_t new_len = static_cast<size_t>(std::llround(
        scale * static_cast<double>(proto.size())));
    new_len = std::clamp(new_len, min_length, max_length);
    Trajectory t = ResampleLinear(proto, new_len);
    const Point2 sigma = t.StdDev();
    for (Point2& p : t.mutable_points()) {
      p.x += rng.Gaussian(0.0, 0.02 * std::max(sigma.x, 1e-3));
      p.y += rng.Gaussian(0.0, 0.02 * std::max(sigma.y, 1e-3));
    }
    db.Add(std::move(t));
  }
  return db;
}

}  // namespace edr
