#include "distance/distance3.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "distance/elastic.h"

namespace edr {

double EuclideanDistance(const Trajectory3& r, const Trajectory3& s) {
  if (r.size() != s.size()) return std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (size_t i = 0; i < r.size(); ++i) sum += SquaredDist(r[i], s[i]);
  return std::sqrt(sum);
}

double SlidingEuclideanDistance(const Trajectory3& r, const Trajectory3& s) {
  if (r.empty() || s.empty()) return std::numeric_limits<double>::infinity();
  const Trajectory3& shorter = r.size() <= s.size() ? r : s;
  const Trajectory3& longer = r.size() <= s.size() ? s : r;
  const size_t m = shorter.size();
  const size_t n = longer.size();

  double best = std::numeric_limits<double>::infinity();
  for (size_t offset = 0; offset + m <= n; ++offset) {
    double sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum += SquaredDist(shorter[i], longer[offset + i]);
      if (sum >= best) break;
    }
    best = std::min(best, sum);
  }
  return std::sqrt(best);
}

double DtwDistance(const Trajectory3& r, const Trajectory3& s) {
  return elastic::Dtw(r, s, -1);
}

double DtwDistanceBanded(const Trajectory3& r, const Trajectory3& s,
                         int band) {
  return elastic::Dtw(r, s, band);
}

double ErpDistance(const Trajectory3& r, const Trajectory3& s, Point3 gap) {
  return elastic::Erp(r, s, -1, gap);
}

double ErpDistanceBanded(const Trajectory3& r, const Trajectory3& s, int band,
                         Point3 gap) {
  return elastic::Erp(r, s, band, gap);
}

size_t LcssLength(const Trajectory3& r, const Trajectory3& s,
                  double epsilon) {
  return elastic::Lcss(r, s, epsilon, -1);
}

size_t LcssLengthBanded(const Trajectory3& r, const Trajectory3& s,
                        double epsilon, int band) {
  return elastic::Lcss(r, s, epsilon, band);
}

double LcssDistance(const Trajectory3& r, const Trajectory3& s,
                    double epsilon) {
  if (r.empty() || s.empty()) return 1.0;
  const double lcss = static_cast<double>(LcssLength(r, s, epsilon));
  const double denom = static_cast<double>(std::min(r.size(), s.size()));
  return 1.0 - lcss / denom;
}

int EdrDistance(const Trajectory3& r, const Trajectory3& s, double epsilon) {
  return elastic::Edr(r, s, epsilon, -1);
}

int EdrDistanceBanded(const Trajectory3& r, const Trajectory3& s,
                      double epsilon, int band) {
  return elastic::Edr(r, s, epsilon, band);
}

int EdrDistanceBounded(const Trajectory3& r, const Trajectory3& s,
                       double epsilon, int bound) {
  return elastic::EdrBounded(r, s, epsilon, bound);
}

}  // namespace edr
