#include "distance/frechet.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace edr {

double DiscreteFrechetDistance(const Trajectory& r, const Trajectory& s) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const size_t m = r.size();
  const size_t n = s.size();
  if (m == 0 && n == 0) return 0.0;
  if (m == 0 || n == 0) return kInf;

  // dp[j] = min over couplings of prefix (i, j) of the max leash length.
  std::vector<double> prev(n, 0.0);
  std::vector<double> curr(n, 0.0);
  prev[0] = L2Dist(r[0], s[0]);
  for (size_t j = 1; j < n; ++j) {
    prev[j] = std::max(prev[j - 1], L2Dist(r[0], s[j]));
  }
  for (size_t i = 1; i < m; ++i) {
    curr[0] = std::max(prev[0], L2Dist(r[i], s[0]));
    for (size_t j = 1; j < n; ++j) {
      const double reach = std::min({prev[j - 1], prev[j], curr[j - 1]});
      curr[j] = std::max(reach, L2Dist(r[i], s[j]));
    }
    std::swap(prev, curr);
  }
  return prev[n - 1];
}

double HausdorffDistance(const Trajectory& r, const Trajectory& s) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (r.empty() && s.empty()) return 0.0;
  if (r.empty() || s.empty()) return kInf;

  const auto directed = [](const Trajectory& a, const Trajectory& b) {
    double worst = 0.0;
    for (const Point2& p : a) {
      double nearest = kInf;
      for (const Point2& q : b) {
        nearest = std::min(nearest, SquaredDist(p, q));
      }
      worst = std::max(worst, nearest);
    }
    return worst;
  };
  return std::sqrt(std::max(directed(r, s), directed(s, r)));
}

}  // namespace edr
