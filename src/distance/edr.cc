#include "distance/edr.h"

#include "distance/elastic.h"

namespace edr {

int EdrDistance(const Trajectory& r, const Trajectory& s, double epsilon) {
  return elastic::Edr(r, s, epsilon, -1);
}

int EdrDistanceBanded(const Trajectory& r, const Trajectory& s,
                      double epsilon, int band) {
  return elastic::Edr(r, s, epsilon, band);
}

int EdrDistanceBounded(const Trajectory& r, const Trajectory& s,
                       double epsilon, int bound) {
  return elastic::EdrBounded(r, s, epsilon, bound);
}

}  // namespace edr
