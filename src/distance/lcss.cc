#include "distance/lcss.h"

#include <algorithm>

#include "distance/elastic.h"

namespace edr {

size_t LcssLength(const Trajectory& r, const Trajectory& s, double epsilon) {
  return elastic::Lcss(r, s, epsilon, -1);
}

size_t LcssLengthBanded(const Trajectory& r, const Trajectory& s,
                        double epsilon, int band) {
  return elastic::Lcss(r, s, epsilon, band);
}

double LcssDistance(const Trajectory& r, const Trajectory& s, double epsilon) {
  if (r.empty() || s.empty()) return 1.0;
  const double lcss = static_cast<double>(LcssLength(r, s, epsilon));
  const double denom = static_cast<double>(std::min(r.size(), s.size()));
  return 1.0 - lcss / denom;
}

}  // namespace edr
