#ifndef EDR_DISTANCE_DTW_H_
#define EDR_DISTANCE_DTW_H_

#include "core/trajectory.h"

namespace edr {

/// Dynamic Time Warping distance (Figure 2, Formula 2):
///
///   DTW(R, S) = dist(r1, s1) + min{ DTW(Rest(R), Rest(S)),
///                                   DTW(Rest(R), S), DTW(R, Rest(S)) },
///
/// with dist the squared L2 element distance and DTW(empty, empty) = 0,
/// DTW(R, empty) = DTW(empty, S) = +infinity for non-empty counterparts.
/// Handles local time shifting by duplicating previous elements; sensitive
/// to noise because every element contributes its real distance.
double DtwDistance(const Trajectory& r, const Trajectory& s);

/// DTW constrained to a Sakoe-Chiba band: the warping path may only visit
/// cells with |i - j| <= max(band, |m - n|) (the widening keeps the corner
/// cell reachable for unequal lengths). `band < 0` means unconstrained.
/// Used to reproduce the paper's "best warping length" DTW runs (Table 1).
double DtwDistanceBanded(const Trajectory& r, const Trajectory& s, int band);

}  // namespace edr

#endif  // EDR_DISTANCE_DTW_H_
