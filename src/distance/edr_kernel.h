#ifndef EDR_DISTANCE_EDR_KERNEL_H_
#define EDR_DISTANCE_EDR_KERNEL_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/trajectory.h"
#include "core/trajectory3.h"

namespace edr {

/// The EDR verification kernels. EDR (Definition 2) is unit-cost edit
/// distance under the epsilon-match predicate (Definition 1), so Myers'
/// bit-parallel Levenshtein recurrence applies exactly: the scalar
/// O(m*n)-cell DP and the O(ceil(m/64)*n)-word bit-parallel kernel compute
/// the *same integer* on every input. The kernel choice is therefore a pure
/// performance knob — every searcher stays lossless under either one.
enum class EdrKernel {
  kScalar,       ///< Rolling two-row integer DP (the paper's formulation).
  kBitParallel,  ///< Myers/Hyyro word-parallel DP, 64 rows per machine word.
};

const char* EdrKernelName(EdrKernel kernel);

/// Process-wide kernel used by the searchers' refinement loops. Defaults to
/// kBitParallel; tests flip it to certify result-identity across kernels.
/// (Banded EDR has no bit-parallel form and always uses the scalar DP.)
EdrKernel DefaultEdrKernel();
void SetDefaultEdrKernel(EdrKernel kernel);

/// Reusable working memory for the EDR kernels, sized once and grown
/// monotonically, so no distance call on a query's refinement loop touches
/// the allocator. One instance per thread; see ThreadLocalEdrScratch().
///
/// Layout: a flat SoA copy of the pattern trajectory (px/py/pz) that the
/// per-column match tests stream over with two (three in 3-D) vectorizable
/// compares per element; the three bit-vector words of the Myers recurrence
/// (vp/vn/eq, one bit per pattern row); and the two rolling integer rows of
/// the scalar DP.
class EdrScratch {
 public:
  /// Ensures capacity for a pattern of length m (SoA arrays + ceil(m/64)
  /// words + the byte-mask staging buffer). Never shrinks.
  void ReservePattern(size_t m) {
    if (px_.size() < m) {
      px_.resize(m);
      py_.resize(m);
      pz_.resize(m);
    }
    const size_t words = (m + 63) / 64;
    if (vp_.size() < words) {
      vp_.resize(words);
      vn_.resize(words);
      eq_.resize(words);
      match_.resize(words * 64);
    }
  }

  /// Ensures capacity for scalar DP rows over a text of length n.
  void ReserveRows(size_t n) {
    if (prev_.size() < n + 1) {
      prev_.resize(n + 1);
      curr_.resize(n + 1);
    }
  }

  double* px() { return px_.data(); }
  double* py() { return py_.data(); }
  double* pz() { return pz_.data(); }
  uint64_t* vp() { return vp_.data(); }
  uint64_t* vn() { return vn_.data(); }
  uint64_t* eq() { return eq_.data(); }
  uint8_t* match() { return match_.data(); }
  int* prev_row() { return prev_.data(); }
  int* curr_row() { return curr_.data(); }

 private:
  std::vector<double> px_, py_, pz_;
  std::vector<uint64_t> vp_, vn_, eq_;
  std::vector<uint8_t> match_;
  std::vector<int> prev_, curr_;
};

/// The calling thread's scratch buffer. Parallel users (ParallelKnn
/// workers, PairwiseEdrMatrix::BuildParallel) each get their own copy for
/// free; single-threaded searchers share one warm buffer per thread.
EdrScratch& ThreadLocalEdrScratch();

/// Bound value meaning "no early abandon": large enough that no reachable
/// EDR value or per-column lower bound exceeds it, small enough that the
/// bound arithmetic cannot overflow int.
inline constexpr int kEdrNoBound = std::numeric_limits<int>::max() / 4;

/// Converts a KnnResultList::KthDistance() pruning threshold into an
/// EdrDistanceBounded*-style integer bound. +infinity (fewer than k
/// neighbors stored yet) disables abandoning so seed distances stay exact;
/// -infinity (k == 0, nothing can ever be kept) makes every computation
/// abandon immediately.
inline int EdrBoundFromKthDistance(double kth_distance) {
  if (std::isinf(kth_distance)) return kth_distance > 0.0 ? kEdrNoBound : -1;
  return static_cast<int>(kth_distance);
}

/// Exact EDR via the bit-parallel kernel. Bit-identical to EdrDistance.
int EdrDistanceBitParallel(const Trajectory& r, const Trajectory& s,
                           double epsilon, EdrScratch& scratch);
int EdrDistanceBitParallel(const Trajectory3& r, const Trajectory3& s,
                           double epsilon, EdrScratch& scratch);

/// Early-abandoning bit-parallel EDR with Hyyro-style score tracking:
/// exact when the result is <= bound, otherwise returns a lower bound
/// strictly greater than `bound` (drop-in for EdrDistanceBounded's
/// contract; the out-of-bound value itself may differ from the scalar
/// row-minimum, which no caller depends on).
int EdrDistanceBitParallelBounded(const Trajectory& r, const Trajectory& s,
                                  double epsilon, int bound,
                                  EdrScratch& scratch);
int EdrDistanceBitParallelBounded(const Trajectory3& r, const Trajectory3& s,
                                  double epsilon, int bound,
                                  EdrScratch& scratch);

/// Kernel-dispatched exact EDR. Both kernels run allocation-free out of
/// `scratch` once it is warm.
int EdrDistanceWith(EdrKernel kernel, EdrScratch& scratch,
                    const Trajectory& r, const Trajectory& s, double epsilon);
int EdrDistanceWith(EdrKernel kernel, EdrScratch& scratch,
                    const Trajectory3& r, const Trajectory3& s,
                    double epsilon);

/// Kernel-dispatched early-abandoning EDR (EdrDistanceBounded contract).
int EdrDistanceBoundedWith(EdrKernel kernel, EdrScratch& scratch,
                           const Trajectory& r, const Trajectory& s,
                           double epsilon, int bound);
int EdrDistanceBoundedWith(EdrKernel kernel, EdrScratch& scratch,
                           const Trajectory3& r, const Trajectory3& s,
                           double epsilon, int bound);

}  // namespace edr

#endif  // EDR_DISTANCE_EDR_KERNEL_H_
