#ifndef EDR_DISTANCE_EDR_H_
#define EDR_DISTANCE_EDR_H_

#include <cstddef>

#include "core/trajectory.h"

namespace edr {

/// Edit Distance on Real sequence (Definition 2) — the paper's primary
/// contribution. EDR(R, S) is the minimum number of insert, delete, or
/// replace operations needed to change R into S, where two elements match
/// (substitution cost 0) iff they are within the matching threshold
/// `epsilon` in every dimension (Definition 1):
///
///   EDR(R, S) = n                  if m == 0
///             = m                  if n == 0
///             = min{ EDR(Rest(R), Rest(S)) + subcost,
///                    EDR(Rest(R), S) + 1,
///                    EDR(R, Rest(S)) + 1 }   otherwise,
///   subcost = 0 if match(r1, s1) else 1.
///
/// Quantizing element distances to {0, 1} makes EDR robust to noise (like
/// LCSS); minimizing edit operations handles local time shifting (like
/// ERP); and, contrary to LCSS, gaps between matched sub-trajectories are
/// penalized by their length. O(m*n) time, O(min(m, n)) space.
int EdrDistance(const Trajectory& r, const Trajectory& s, double epsilon);

/// EDR constrained to a Sakoe-Chiba band: only cells with
/// |i - j| <= max(band, |m - n|) are explored. `band < 0` means
/// unconstrained. The banded value upper-bounds the true EDR; it is an
/// efficiency/ablation device, not a lossless filter. Note the paper's
/// pruning framework deliberately avoids warping-length constraints.
int EdrDistanceBanded(const Trajectory& r, const Trajectory& s,
                      double epsilon, int band);

/// Early-abandoning EDR for k-NN scans. Computes EDR(R, S) exactly if it
/// is <= `bound`; otherwise returns some value strictly greater than
/// `bound` that lower-bounds the true distance. Correctness: every warping
/// path crosses every DP row, so the row minimum lower-bounds the final
/// value; once it exceeds `bound` the computation can stop. Also applies
/// the trivial length bound EDR >= |m - n| up front.
int EdrDistanceBounded(const Trajectory& r, const Trajectory& s,
                       double epsilon, int bound);

/// The trivial lower bound EDR(R, S) >= ||R| - |S||: converting between
/// lengths m and n requires at least |m - n| inserts or deletes.
inline int EdrLengthLowerBound(const Trajectory& r, const Trajectory& s) {
  const long m = static_cast<long>(r.size());
  const long n = static_cast<long>(s.size());
  return static_cast<int>(m > n ? m - n : n - m);
}

}  // namespace edr

#endif  // EDR_DISTANCE_EDR_H_
