#ifndef EDR_DISTANCE_EUCLIDEAN_H_
#define EDR_DISTANCE_EUCLIDEAN_H_

#include "core/trajectory.h"

namespace edr {

/// Euclidean distance between two trajectories of the same length
/// (Figure 2, Formula 1):
///
///   Eu(R, S) = sqrt( sum_i dist(r_i, s_i) ),
///   dist(r, s) = (r.x - s.x)^2 + (r.y - s.y)^2.
///
/// Euclidean distance requires the trajectories to have equal length;
/// returns +infinity when the lengths differ (the measure is undefined
/// there — use SlidingEuclideanDistance instead).
double EuclideanDistance(const Trajectory& r, const Trajectory& s);

/// Euclidean distance for possibly different-length trajectories, using the
/// strategy of Vlachos et al. adopted by the paper (Section 3.2): the
/// shorter trajectory slides along the longer one and the minimum distance
/// over all alignments is recorded. For equal lengths this reduces to
/// EuclideanDistance. Returns +infinity if either trajectory is empty.
double SlidingEuclideanDistance(const Trajectory& r, const Trajectory& s);

}  // namespace edr

#endif  // EDR_DISTANCE_EUCLIDEAN_H_
