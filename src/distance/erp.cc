#include "distance/erp.h"

#include "distance/elastic.h"

namespace edr {

double ErpDistance(const Trajectory& r, const Trajectory& s, Point2 gap) {
  return elastic::Erp(r, s, -1, gap);
}

double ErpDistanceBanded(const Trajectory& r, const Trajectory& s, int band,
                         Point2 gap) {
  return elastic::Erp(r, s, band, gap);
}

}  // namespace edr
