#include "distance/edr_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <type_traits>

#include "core/cpu.h"

#if defined(__SSE2__) && !defined(EDR_DISABLE_SIMD)
#include <emmintrin.h>
#define EDR_EDRKERNEL_SSE2 1
#endif

#if defined(__x86_64__) && defined(__GNUC__) && !defined(EDR_DISABLE_SIMD)
#include <immintrin.h>
#define EDR_EDRKERNEL_AVX2 1
#define EDR_EDRKERNEL_AVX512 1
#endif

#if defined(__aarch64__) && !defined(EDR_DISABLE_SIMD)
#include <arm_neon.h>
#define EDR_EDRKERNEL_NEON 1
#endif

namespace edr {

namespace {

std::atomic<EdrKernel> g_default_kernel{EdrKernel::kBitParallel};

// ---------------------------------------------------------------------------
// SoA pattern copies. The match tests below stream over these flat arrays
// with branch-free compares; the compiler vectorizes them, which it cannot
// do over the AoS Point2/Point3 layout inside Trajectory.
// ---------------------------------------------------------------------------

void FillPattern(EdrScratch& sc, const Trajectory& t) {
  double* px = sc.px();
  double* py = sc.py();
  for (size_t i = 0; i < t.size(); ++i) {
    px[i] = t[i].x;
    py[i] = t[i].y;
  }
}

void FillPattern(EdrScratch& sc, const Trajectory3& t) {
  double* px = sc.px();
  double* py = sc.py();
  double* pz = sc.pz();
  for (size_t i = 0; i < t.size(); ++i) {
    px[i] = t[i].x;
    py[i] = t[i].y;
    pz[i] = t[i].z;
  }
}

// Per-column match bit-vector: bit i of eq is set iff pattern element i
// epsilon-matches the current text element (Definition 1, boundary
// inclusive — exactly the Match() predicate of the scalar DP).
//
// Two stages so the compiler can vectorize: a branch-free compare loop
// writing one 0/1 byte per pattern element, then a multiply-pack turning
// each group of eight bool bytes into eight bits (the partial products of
// kPackMagic land on pairwise-distinct bit positions, so no carries and
// the pack is exact). Bytes [m, words*64) are zeroed once per call by the
// caller, which makes the padding rows permanent mismatches.
constexpr uint64_t kPackMagic = 0x0102040810204080ULL;

inline void PackMatchBytes(const uint8_t* match, size_t words, uint64_t* eq) {
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = 0;
    for (size_t g = 0; g < 8; ++g) {
      uint64_t chunk;
      std::memcpy(&chunk, match + w * 64 + g * 8, sizeof(chunk));
      bits |= ((chunk * kPackMagic) >> 56) << (8 * g);
    }
    eq[w] = bits;
  }
}

// Scalar reference bodies: one 0/1 byte per pattern element, then the
// multiply-pack. Every platform compiles these; they are also the kScalar
// dispatch target and the only path under EDR_DISABLE_SIMD.

inline void BuildEqScalar(const double* px, const double* py, size_t m,
                          Point2 s, double epsilon, uint8_t* match,
                          size_t words, uint64_t* eq) {
  for (size_t i = 0; i < m; ++i) {
    match[i] = static_cast<uint8_t>((std::fabs(px[i] - s.x) <= epsilon) &
                                    (std::fabs(py[i] - s.y) <= epsilon));
  }
  PackMatchBytes(match, words, eq);
}

inline void BuildEq3Scalar(const double* px, const double* py,
                           const double* pz, size_t m, Point3 s,
                           double epsilon, uint8_t* match, size_t words,
                           uint64_t* eq) {
  for (size_t i = 0; i < m; ++i) {
    match[i] = static_cast<uint8_t>((std::fabs(px[i] - s.x) <= epsilon) &
                                    (std::fabs(py[i] - s.y) <= epsilon) &
                                    (std::fabs(pz[i] - s.z) <= epsilon));
  }
  PackMatchBytes(match, words, eq);
}

#if defined(EDR_EDRKERNEL_SSE2)

// SSE2 path (baseline on x86-64): |d| <= eps computed exactly as the
// scalar Match() — fabs is a sign-bit clear, the compare is the same
// IEEE <= — and two lanes at a time drop straight into the bit-vector via
// movemask, skipping the byte staging buffer entirely. The wider-lane
// variants below repeat the same per-lane operations, so every level
// builds the identical bit-vector.

inline void BuildEqSse2(const double* px, const double* py, size_t m,
                        Point2 s, double epsilon, uint8_t* /*match*/,
                        size_t words, uint64_t* eq) {
  const __m128d sign = _mm_set1_pd(-0.0);
  const __m128d eps = _mm_set1_pd(epsilon);
  const __m128d sx = _mm_set1_pd(s.x);
  const __m128d sy = _mm_set1_pd(s.y);
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, m - base);
    uint64_t bits = 0;
    size_t k = 0;
    for (; k + 2 <= limit; k += 2) {
      const __m128d cx = _mm_cmple_pd(
          _mm_andnot_pd(sign, _mm_sub_pd(_mm_loadu_pd(px + base + k), sx)),
          eps);
      const __m128d cy = _mm_cmple_pd(
          _mm_andnot_pd(sign, _mm_sub_pd(_mm_loadu_pd(py + base + k), sy)),
          eps);
      bits |= static_cast<uint64_t>(_mm_movemask_pd(_mm_and_pd(cx, cy)))
              << k;
    }
    if (k < limit) {
      const uint64_t last = static_cast<uint64_t>(
          (std::fabs(px[base + k] - s.x) <= epsilon) &
          (std::fabs(py[base + k] - s.y) <= epsilon));
      bits |= last << k;
    }
    eq[w] = bits;
  }
}

inline void BuildEq3Sse2(const double* px, const double* py,
                         const double* pz, size_t m, Point3 s, double epsilon,
                         uint8_t* /*match*/, size_t words, uint64_t* eq) {
  const __m128d sign = _mm_set1_pd(-0.0);
  const __m128d eps = _mm_set1_pd(epsilon);
  const __m128d sx = _mm_set1_pd(s.x);
  const __m128d sy = _mm_set1_pd(s.y);
  const __m128d sz = _mm_set1_pd(s.z);
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, m - base);
    uint64_t bits = 0;
    size_t k = 0;
    for (; k + 2 <= limit; k += 2) {
      const __m128d cx = _mm_cmple_pd(
          _mm_andnot_pd(sign, _mm_sub_pd(_mm_loadu_pd(px + base + k), sx)),
          eps);
      const __m128d cy = _mm_cmple_pd(
          _mm_andnot_pd(sign, _mm_sub_pd(_mm_loadu_pd(py + base + k), sy)),
          eps);
      const __m128d cz = _mm_cmple_pd(
          _mm_andnot_pd(sign, _mm_sub_pd(_mm_loadu_pd(pz + base + k), sz)),
          eps);
      bits |= static_cast<uint64_t>(
                  _mm_movemask_pd(_mm_and_pd(_mm_and_pd(cx, cy), cz)))
              << k;
    }
    if (k < limit) {
      const uint64_t last = static_cast<uint64_t>(
          (std::fabs(px[base + k] - s.x) <= epsilon) &
          (std::fabs(py[base + k] - s.y) <= epsilon) &
          (std::fabs(pz[base + k] - s.z) <= epsilon));
      bits |= last << k;
    }
    eq[w] = bits;
  }
}

#endif  // defined(EDR_EDRKERNEL_SSE2)

#if defined(EDR_EDRKERNEL_AVX2)

__attribute__((target("avx2"))) void BuildEqAvx2(const double* px,
                                                 const double* py, size_t m,
                                                 Point2 s, double epsilon,
                                                 uint8_t* /*match*/,
                                                 size_t words, uint64_t* eq) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d eps = _mm256_set1_pd(epsilon);
  const __m256d sx = _mm256_set1_pd(s.x);
  const __m256d sy = _mm256_set1_pd(s.y);
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, m - base);
    uint64_t bits = 0;
    size_t k = 0;
    for (; k + 4 <= limit; k += 4) {
      const __m256d cx = _mm256_cmp_pd(
          _mm256_andnot_pd(sign,
                           _mm256_sub_pd(_mm256_loadu_pd(px + base + k), sx)),
          eps, _CMP_LE_OQ);
      const __m256d cy = _mm256_cmp_pd(
          _mm256_andnot_pd(sign,
                           _mm256_sub_pd(_mm256_loadu_pd(py + base + k), sy)),
          eps, _CMP_LE_OQ);
      bits |= static_cast<uint64_t>(_mm256_movemask_pd(_mm256_and_pd(cx, cy)))
              << k;
    }
    for (; k < limit; ++k) {
      const uint64_t one = static_cast<uint64_t>(
          (std::fabs(px[base + k] - s.x) <= epsilon) &
          (std::fabs(py[base + k] - s.y) <= epsilon));
      bits |= one << k;
    }
    eq[w] = bits;
  }
}

__attribute__((target("avx2"))) void BuildEq3Avx2(
    const double* px, const double* py, const double* pz, size_t m, Point3 s,
    double epsilon, uint8_t* /*match*/, size_t words, uint64_t* eq) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d eps = _mm256_set1_pd(epsilon);
  const __m256d sx = _mm256_set1_pd(s.x);
  const __m256d sy = _mm256_set1_pd(s.y);
  const __m256d sz = _mm256_set1_pd(s.z);
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, m - base);
    uint64_t bits = 0;
    size_t k = 0;
    for (; k + 4 <= limit; k += 4) {
      const __m256d cx = _mm256_cmp_pd(
          _mm256_andnot_pd(sign,
                           _mm256_sub_pd(_mm256_loadu_pd(px + base + k), sx)),
          eps, _CMP_LE_OQ);
      const __m256d cy = _mm256_cmp_pd(
          _mm256_andnot_pd(sign,
                           _mm256_sub_pd(_mm256_loadu_pd(py + base + k), sy)),
          eps, _CMP_LE_OQ);
      const __m256d cz = _mm256_cmp_pd(
          _mm256_andnot_pd(sign,
                           _mm256_sub_pd(_mm256_loadu_pd(pz + base + k), sz)),
          eps, _CMP_LE_OQ);
      bits |= static_cast<uint64_t>(_mm256_movemask_pd(
                  _mm256_and_pd(_mm256_and_pd(cx, cy), cz)))
              << k;
    }
    for (; k < limit; ++k) {
      const uint64_t one = static_cast<uint64_t>(
          (std::fabs(px[base + k] - s.x) <= epsilon) &
          (std::fabs(py[base + k] - s.y) <= epsilon) &
          (std::fabs(pz[base + k] - s.z) <= epsilon));
      bits |= one << k;
    }
    eq[w] = bits;
  }
}

#endif  // defined(EDR_EDRKERNEL_AVX2)

#if defined(EDR_EDRKERNEL_AVX512)

// AVX-512 drops the movemask: the compares produce mask registers whose
// bits go straight into the eq word, eight rows per step.

__attribute__((target("avx512f"))) void BuildEqAvx512(
    const double* px, const double* py, size_t m, Point2 s, double epsilon,
    uint8_t* /*match*/, size_t words, uint64_t* eq) {
  const __m512d eps = _mm512_set1_pd(epsilon);
  const __m512d sx = _mm512_set1_pd(s.x);
  const __m512d sy = _mm512_set1_pd(s.y);
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, m - base);
    uint64_t bits = 0;
    size_t k = 0;
    for (; k + 8 <= limit; k += 8) {
      const __mmask8 cx = _mm512_cmp_pd_mask(
          _mm512_abs_pd(_mm512_sub_pd(_mm512_loadu_pd(px + base + k), sx)),
          eps, _CMP_LE_OQ);
      const __mmask8 cy = _mm512_cmp_pd_mask(
          _mm512_abs_pd(_mm512_sub_pd(_mm512_loadu_pd(py + base + k), sy)),
          eps, _CMP_LE_OQ);
      bits |= static_cast<uint64_t>(cx & cy) << k;
    }
    for (; k < limit; ++k) {
      const uint64_t one = static_cast<uint64_t>(
          (std::fabs(px[base + k] - s.x) <= epsilon) &
          (std::fabs(py[base + k] - s.y) <= epsilon));
      bits |= one << k;
    }
    eq[w] = bits;
  }
}

__attribute__((target("avx512f"))) void BuildEq3Avx512(
    const double* px, const double* py, const double* pz, size_t m, Point3 s,
    double epsilon, uint8_t* /*match*/, size_t words, uint64_t* eq) {
  const __m512d eps = _mm512_set1_pd(epsilon);
  const __m512d sx = _mm512_set1_pd(s.x);
  const __m512d sy = _mm512_set1_pd(s.y);
  const __m512d sz = _mm512_set1_pd(s.z);
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, m - base);
    uint64_t bits = 0;
    size_t k = 0;
    for (; k + 8 <= limit; k += 8) {
      const __mmask8 cx = _mm512_cmp_pd_mask(
          _mm512_abs_pd(_mm512_sub_pd(_mm512_loadu_pd(px + base + k), sx)),
          eps, _CMP_LE_OQ);
      const __mmask8 cy = _mm512_cmp_pd_mask(
          _mm512_abs_pd(_mm512_sub_pd(_mm512_loadu_pd(py + base + k), sy)),
          eps, _CMP_LE_OQ);
      const __mmask8 cz = _mm512_cmp_pd_mask(
          _mm512_abs_pd(_mm512_sub_pd(_mm512_loadu_pd(pz + base + k), sz)),
          eps, _CMP_LE_OQ);
      bits |= static_cast<uint64_t>(cx & cy & cz) << k;
    }
    for (; k < limit; ++k) {
      const uint64_t one = static_cast<uint64_t>(
          (std::fabs(px[base + k] - s.x) <= epsilon) &
          (std::fabs(py[base + k] - s.y) <= epsilon) &
          (std::fabs(pz[base + k] - s.z) <= epsilon));
      bits |= one << k;
    }
    eq[w] = bits;
  }
}

#endif  // defined(EDR_EDRKERNEL_AVX512)

#if defined(EDR_EDRKERNEL_NEON)

// NEON: FABD gives |d| with the same single rounding as fabs(a - b); the
// two compare lanes land in the eq word via lane extracts.

inline void BuildEqNeon(const double* px, const double* py, size_t m,
                        Point2 s, double epsilon, uint8_t* /*match*/,
                        size_t words, uint64_t* eq) {
  const float64x2_t eps = vdupq_n_f64(epsilon);
  const float64x2_t sx = vdupq_n_f64(s.x);
  const float64x2_t sy = vdupq_n_f64(s.y);
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, m - base);
    uint64_t bits = 0;
    size_t k = 0;
    for (; k + 2 <= limit; k += 2) {
      const uint64x2_t cx = vcleq_f64(vabdq_f64(vld1q_f64(px + base + k), sx),
                                      eps);
      const uint64x2_t cy = vcleq_f64(vabdq_f64(vld1q_f64(py + base + k), sy),
                                      eps);
      const uint64x2_t c = vandq_u64(cx, cy);
      bits |= ((vgetq_lane_u64(c, 0) & 1) | ((vgetq_lane_u64(c, 1) & 1) << 1))
              << k;
    }
    if (k < limit) {
      const uint64_t one = static_cast<uint64_t>(
          (std::fabs(px[base + k] - s.x) <= epsilon) &
          (std::fabs(py[base + k] - s.y) <= epsilon));
      bits |= one << k;
    }
    eq[w] = bits;
  }
}

inline void BuildEq3Neon(const double* px, const double* py, const double* pz,
                         size_t m, Point3 s, double epsilon,
                         uint8_t* /*match*/, size_t words, uint64_t* eq) {
  const float64x2_t eps = vdupq_n_f64(epsilon);
  const float64x2_t sx = vdupq_n_f64(s.x);
  const float64x2_t sy = vdupq_n_f64(s.y);
  const float64x2_t sz = vdupq_n_f64(s.z);
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, m - base);
    uint64_t bits = 0;
    size_t k = 0;
    for (; k + 2 <= limit; k += 2) {
      const uint64x2_t cx = vcleq_f64(vabdq_f64(vld1q_f64(px + base + k), sx),
                                      eps);
      const uint64x2_t cy = vcleq_f64(vabdq_f64(vld1q_f64(py + base + k), sy),
                                      eps);
      const uint64x2_t cz = vcleq_f64(vabdq_f64(vld1q_f64(pz + base + k), sz),
                                      eps);
      const uint64x2_t c = vandq_u64(vandq_u64(cx, cy), cz);
      bits |= ((vgetq_lane_u64(c, 0) & 1) | ((vgetq_lane_u64(c, 1) & 1) << 1))
              << k;
    }
    if (k < limit) {
      const uint64_t one = static_cast<uint64_t>(
          (std::fabs(px[base + k] - s.x) <= epsilon) &
          (std::fabs(py[base + k] - s.y) <= epsilon) &
          (std::fabs(pz[base + k] - s.z) <= epsilon));
      bits |= one << k;
    }
    eq[w] = bits;
  }
}

#endif  // defined(EDR_EDRKERNEL_NEON)

using Eq2Fn = void (*)(const double*, const double*, size_t, Point2, double,
                       uint8_t*, size_t, uint64_t*);
using Eq3Fn = void (*)(const double*, const double*, const double*, size_t,
                       Point3, double, uint8_t*, size_t, uint64_t*);

/// Match-vector builder for a dispatch level, resolved once per
/// BitParallelEdr call from ActiveKernelLevel(). Levels not compiled into
/// this build fall back to scalar (ActiveKernelLevel never hands them out;
/// the mapping just stays total).
Eq2Fn BuildEqFor(KernelLevel level) {
  switch (level) {
#if defined(EDR_EDRKERNEL_AVX512)
    case KernelLevel::kAvx512: return BuildEqAvx512;
#endif
#if defined(EDR_EDRKERNEL_AVX2)
    case KernelLevel::kAvx2: return BuildEqAvx2;
#endif
#if defined(EDR_EDRKERNEL_SSE2)
    case KernelLevel::kSse2: return BuildEqSse2;
#endif
#if defined(EDR_EDRKERNEL_NEON)
    case KernelLevel::kNeon: return BuildEqNeon;
#endif
    default: return BuildEqScalar;
  }
}

Eq3Fn BuildEq3For(KernelLevel level) {
  switch (level) {
#if defined(EDR_EDRKERNEL_AVX512)
    case KernelLevel::kAvx512: return BuildEq3Avx512;
#endif
#if defined(EDR_EDRKERNEL_AVX2)
    case KernelLevel::kAvx2: return BuildEq3Avx2;
#endif
#if defined(EDR_EDRKERNEL_SSE2)
    case KernelLevel::kSse2: return BuildEq3Sse2;
#endif
#if defined(EDR_EDRKERNEL_NEON)
    case KernelLevel::kNeon: return BuildEq3Neon;
#endif
    default: return BuildEq3Scalar;
  }
}

// ---------------------------------------------------------------------------
// Myers' bit-parallel recurrence (Myers 1999, with Hyyro's carry-in
// correction as implemented in edlib). The pattern is the shorter
// trajectory; each machine word holds 64 DP rows as vertical-delta bits
// (vp: +1, vn: -1), and one column of the DP advances with ~15 word ops
// per word. score tracks D[m][j] via the horizontal-delta bits at row m.
//
// Unused high bits of the last word start as vp=1 garbage; every operation
// propagates information strictly upward (addition carries, shifts), so
// they never reach the tracked row-m bit and no masking is needed.
//
// `bound` enables Hyyro-style early abandoning: adjacent column scores
// differ by at most 1, so D[m][n] >= score - (columns remaining); once that
// exceeds the bound the scan stops and returns it (a certified lower bound
// strictly greater than the bound). Exact callers pass kEdrNoBound.
// ---------------------------------------------------------------------------

template <typename BuildEqFn>
int MyersCore(size_t m, size_t n, int bound, EdrScratch& sc,
              BuildEqFn&& build_eq) {
  const size_t words = (m + 63) / 64;
  uint64_t* vp = sc.vp();
  uint64_t* vn = sc.vn();
  uint64_t* eq = sc.eq();
  std::fill_n(vp, words, ~uint64_t{0});
  std::fill_n(vn, words, uint64_t{0});
  const uint64_t last_bit = uint64_t{1} << ((m - 1) & 63);
  const size_t last_word = words - 1;
  int score = static_cast<int>(m);

  for (size_t j = 0; j < n; ++j) {
    build_eq(j, eq);
    int hin = 1;  // D[0][j] - D[0][j-1] = +1: deleting text costs 1 per step.
    for (size_t w = 0; w < words; ++w) {
      uint64_t eqw = eq[w];
      const uint64_t pv = vp[w];
      const uint64_t mv = vn[w];
      const uint64_t xv = eqw | mv;
      eqw |= static_cast<uint64_t>(hin < 0);
      const uint64_t xh = (((eqw & pv) + pv) ^ pv) | eqw;
      uint64_t ph = mv | ~(xh | pv);
      uint64_t mh = pv & xh;
      if (w == last_word) {
        if (ph & last_bit) {
          ++score;
        } else if (mh & last_bit) {
          --score;
        }
      }
      const int hout = (ph >> 63) ? 1 : ((mh >> 63) ? -1 : 0);
      ph = (ph << 1) | static_cast<uint64_t>(hin > 0);
      mh = (mh << 1) | static_cast<uint64_t>(hin < 0);
      vp[w] = mh | ~(xv | ph);
      vn[w] = ph & xv;
      hin = hout;
    }
    const int floor_now = score - static_cast<int>(n - 1 - j);
    if (floor_now > bound) return floor_now;
  }
  return score;
}

template <typename TrajectoryT>
int BitParallelEdr(const TrajectoryT& r, const TrajectoryT& s, double epsilon,
                   int bound, EdrScratch& sc) {
  // EDR is symmetric; make the shorter trajectory the pattern so the
  // column loop runs over fewer words.
  const TrajectoryT* pat = &r;
  const TrajectoryT* txt = &s;
  if (pat->size() > txt->size()) std::swap(pat, txt);
  const size_t m = pat->size();
  const size_t n = txt->size();
  if (m == 0) return static_cast<int>(n);

  const int length_bound = static_cast<int>(n - m);
  if (length_bound > bound) return length_bound;

  sc.ReservePattern(m);
  FillPattern(sc, *pat);
  const double* px = sc.px();
  const double* py = sc.py();
  const size_t words = (m + 63) / 64;
  uint8_t* match = sc.match();
  std::fill(match + m, match + words * 64, uint8_t{0});
  if constexpr (std::is_same_v<TrajectoryT, Trajectory3>) {
    const Eq3Fn build_eq3 = BuildEq3For(ActiveKernelLevel());
    const double* pz = sc.pz();
    const TrajectoryT& text = *txt;
    return MyersCore(m, n, bound, sc, [&](size_t j, uint64_t* eq) {
      build_eq3(px, py, pz, m, text[j], epsilon, match, words, eq);
    });
  } else {
    const Eq2Fn build_eq2 = BuildEqFor(ActiveKernelLevel());
    const TrajectoryT& text = *txt;
    return MyersCore(m, n, bound, sc, [&](size_t j, uint64_t* eq) {
      build_eq2(px, py, m, text[j], epsilon, match, words, eq);
    });
  }
}

// ---------------------------------------------------------------------------
// Scalar kernels, identical cell-by-cell to elastic::Edr / elastic::
// EdrBounded (unbanded) but running out of the reusable scratch rows
// instead of allocating two vectors per call.
// ---------------------------------------------------------------------------

template <typename TrajectoryT>
int ScalarEdr(const TrajectoryT& r, const TrajectoryT& s, double epsilon,
              EdrScratch& sc) {
  const size_t m = r.size();
  const size_t n = s.size();
  if (m == 0) return static_cast<int>(n);
  if (n == 0) return static_cast<int>(m);

  sc.ReserveRows(n);
  int* prev = sc.prev_row();
  int* curr = sc.curr_row();
  for (size_t j = 0; j <= n; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= m; ++i) {
    curr[0] = static_cast<int>(i);
    for (size_t j = 1; j <= n; ++j) {
      const int subcost = Match(r[i - 1], s[j - 1], epsilon) ? 0 : 1;
      curr[j] = std::min({prev[j - 1] + subcost, prev[j] + 1, curr[j - 1] + 1});
    }
    std::swap(prev, curr);
  }
  return prev[n];
}

template <typename TrajectoryT>
int ScalarEdrBounded(const TrajectoryT& r, const TrajectoryT& s,
                     double epsilon, int bound, EdrScratch& sc) {
  const size_t m = r.size();
  const size_t n = s.size();
  if (m == 0) return static_cast<int>(n);
  if (n == 0) return static_cast<int>(m);

  const int length_bound = static_cast<int>(
      m > n ? m - n : n - m);
  if (length_bound > bound) return length_bound;

  sc.ReserveRows(n);
  int* prev = sc.prev_row();
  int* curr = sc.curr_row();
  for (size_t j = 0; j <= n; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= m; ++i) {
    curr[0] = static_cast<int>(i);
    int row_min = curr[0];
    for (size_t j = 1; j <= n; ++j) {
      const int subcost = Match(r[i - 1], s[j - 1], epsilon) ? 0 : 1;
      curr[j] = std::min({prev[j - 1] + subcost, prev[j] + 1, curr[j - 1] + 1});
      row_min = std::min(row_min, curr[j]);
    }
    // Every edit path crosses every row, so the row minimum lower-bounds
    // the final value; above the bound the scan can stop.
    if (row_min > bound) return row_min;
    std::swap(prev, curr);
  }
  return prev[n];
}

}  // namespace

const char* EdrKernelName(EdrKernel kernel) {
  switch (kernel) {
    case EdrKernel::kScalar: return "scalar";
    case EdrKernel::kBitParallel: return "bit-parallel";
  }
  return "?";
}

EdrKernel DefaultEdrKernel() {
  return g_default_kernel.load(std::memory_order_relaxed);
}

void SetDefaultEdrKernel(EdrKernel kernel) {
  g_default_kernel.store(kernel, std::memory_order_relaxed);
}

EdrScratch& ThreadLocalEdrScratch() {
  static thread_local EdrScratch scratch;
  return scratch;
}

int EdrDistanceBitParallel(const Trajectory& r, const Trajectory& s,
                           double epsilon, EdrScratch& scratch) {
  return BitParallelEdr(r, s, epsilon, kEdrNoBound, scratch);
}

int EdrDistanceBitParallel(const Trajectory3& r, const Trajectory3& s,
                           double epsilon, EdrScratch& scratch) {
  return BitParallelEdr(r, s, epsilon, kEdrNoBound, scratch);
}

int EdrDistanceBitParallelBounded(const Trajectory& r, const Trajectory& s,
                                  double epsilon, int bound,
                                  EdrScratch& scratch) {
  return BitParallelEdr(r, s, epsilon, std::min(bound, kEdrNoBound), scratch);
}

int EdrDistanceBitParallelBounded(const Trajectory3& r, const Trajectory3& s,
                                  double epsilon, int bound,
                                  EdrScratch& scratch) {
  return BitParallelEdr(r, s, epsilon, std::min(bound, kEdrNoBound), scratch);
}

int EdrDistanceWith(EdrKernel kernel, EdrScratch& scratch, const Trajectory& r,
                    const Trajectory& s, double epsilon) {
  return kernel == EdrKernel::kBitParallel
             ? BitParallelEdr(r, s, epsilon, kEdrNoBound, scratch)
             : ScalarEdr(r, s, epsilon, scratch);
}

int EdrDistanceWith(EdrKernel kernel, EdrScratch& scratch,
                    const Trajectory3& r, const Trajectory3& s,
                    double epsilon) {
  return kernel == EdrKernel::kBitParallel
             ? BitParallelEdr(r, s, epsilon, kEdrNoBound, scratch)
             : ScalarEdr(r, s, epsilon, scratch);
}

int EdrDistanceBoundedWith(EdrKernel kernel, EdrScratch& scratch,
                           const Trajectory& r, const Trajectory& s,
                           double epsilon, int bound) {
  bound = std::min(bound, kEdrNoBound);
  return kernel == EdrKernel::kBitParallel
             ? BitParallelEdr(r, s, epsilon, bound, scratch)
             : ScalarEdrBounded(r, s, epsilon, bound, scratch);
}

int EdrDistanceBoundedWith(EdrKernel kernel, EdrScratch& scratch,
                           const Trajectory3& r, const Trajectory3& s,
                           double epsilon, int bound) {
  bound = std::min(bound, kEdrNoBound);
  return kernel == EdrKernel::kBitParallel
             ? BitParallelEdr(r, s, epsilon, bound, scratch)
             : ScalarEdrBounded(r, s, epsilon, bound, scratch);
}

}  // namespace edr
