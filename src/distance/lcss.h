#ifndef EDR_DISTANCE_LCSS_H_
#define EDR_DISTANCE_LCSS_H_

#include <cstddef>

#include "core/trajectory.h"

namespace edr {

/// Longest Common Subsequence score of two trajectories (Figure 2,
/// Formula 4): the length of the longest subsequence whose elements match
/// pairwise within the matching threshold `epsilon` (Definition 1).
/// Robust to noise (distance quantized to 0/1), but ignores the size of
/// the gaps between matched subsequences — the inaccuracy EDR fixes.
size_t LcssLength(const Trajectory& r, const Trajectory& s, double epsilon);

/// LCSS score constrained to a Sakoe-Chiba band (|i - j| <= max(band,
/// |m - n|)); `band < 0` means unconstrained.
size_t LcssLengthBanded(const Trajectory& r, const Trajectory& s,
                        double epsilon, int band);

/// The standard distance form of the LCSS score,
///   LcssDistance = 1 - LCSS(R, S) / min(|R|, |S|),
/// in [0, 1]; 0 when one sequence is a matching subsequence of the other.
/// Returns 1 when either trajectory is empty.
double LcssDistance(const Trajectory& r, const Trajectory& s, double epsilon);

}  // namespace edr

#endif  // EDR_DISTANCE_LCSS_H_
