#include "distance/distance.h"

#include "distance/dtw.h"
#include "distance/edr.h"
#include "distance/erp.h"
#include "distance/euclidean.h"
#include "distance/lcss.h"

namespace edr {

DistanceFn MakeDistance(DistanceKind kind, const DistanceOptions& options) {
  switch (kind) {
    case DistanceKind::kEuclidean:
      return [](const Trajectory& r, const Trajectory& s) {
        return SlidingEuclideanDistance(r, s);
      };
    case DistanceKind::kDtw:
      return [band = options.band](const Trajectory& r, const Trajectory& s) {
        return DtwDistanceBanded(r, s, band);
      };
    case DistanceKind::kErp:
      return [gap = options.erp_gap, band = options.band](
                 const Trajectory& r, const Trajectory& s) {
        return ErpDistanceBanded(r, s, band, gap);
      };
    case DistanceKind::kLcss:
      return [eps = options.epsilon](const Trajectory& r,
                                     const Trajectory& s) {
        return LcssDistance(r, s, eps);
      };
    case DistanceKind::kEdr:
      return [eps = options.epsilon, band = options.band](
                 const Trajectory& r, const Trajectory& s) {
        return static_cast<double>(EdrDistanceBanded(r, s, eps, band));
      };
  }
  return nullptr;
}

const char* DistanceKindName(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kEuclidean: return "Eu";
    case DistanceKind::kDtw: return "DTW";
    case DistanceKind::kErp: return "ERP";
    case DistanceKind::kLcss: return "LCSS";
    case DistanceKind::kEdr: return "EDR";
  }
  return "?";
}

}  // namespace edr
