#include "distance/dtw.h"

#include "distance/elastic.h"

namespace edr {

double DtwDistance(const Trajectory& r, const Trajectory& s) {
  return elastic::Dtw(r, s, -1);
}

double DtwDistanceBanded(const Trajectory& r, const Trajectory& s, int band) {
  return elastic::Dtw(r, s, band);
}

}  // namespace edr
