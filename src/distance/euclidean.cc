#include "distance/euclidean.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace edr {

double EuclideanDistance(const Trajectory& r, const Trajectory& s) {
  if (r.size() != s.size()) return std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (size_t i = 0; i < r.size(); ++i) sum += SquaredDist(r[i], s[i]);
  return std::sqrt(sum);
}

double SlidingEuclideanDistance(const Trajectory& r, const Trajectory& s) {
  if (r.empty() || s.empty()) return std::numeric_limits<double>::infinity();
  const Trajectory& shorter = r.size() <= s.size() ? r : s;
  const Trajectory& longer = r.size() <= s.size() ? s : r;
  const size_t m = shorter.size();
  const size_t n = longer.size();

  double best = std::numeric_limits<double>::infinity();
  for (size_t offset = 0; offset + m <= n; ++offset) {
    double sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum += SquaredDist(shorter[i], longer[offset + i]);
      if (sum >= best) break;  // Early abandon: sum only grows.
    }
    best = std::min(best, sum);
  }
  return std::sqrt(best);
}

}  // namespace edr
