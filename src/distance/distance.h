#ifndef EDR_DISTANCE_DISTANCE_H_
#define EDR_DISTANCE_DISTANCE_H_

#include <functional>
#include <string>

#include "core/trajectory.h"

namespace edr {

/// The five distance functions compared by the paper (Figure 2 plus EDR).
enum class DistanceKind {
  kEuclidean,  ///< sliding Euclidean (Section 3.2 strategy for unequal lengths)
  kDtw,        ///< Dynamic Time Warping
  kErp,        ///< Edit distance with Real Penalty
  kLcss,       ///< Longest Common Subsequence (distance form)
  kEdr,        ///< Edit Distance on Real sequence (this paper)
};

/// Parameters shared by the distance-function factory.
struct DistanceOptions {
  /// Matching threshold for LCSS and EDR (Definition 1). The paper's rule
  /// of thumb: a quarter of the maximum trajectory standard deviation,
  /// i.e. 0.25 after z-score normalization.
  double epsilon = 0.25;
  /// Gap element for ERP; the origin is the mean of normalized data.
  Point2 erp_gap{0.0, 0.0};
  /// Sakoe-Chiba band half-width for DTW/ERP/LCSS/EDR; -1 = unconstrained.
  int band = -1;
};

/// A type-erased trajectory distance, convenient for generic evaluation
/// code (clustering, classification) that sweeps over distance functions.
using DistanceFn =
    std::function<double(const Trajectory&, const Trajectory&)>;

/// Builds the distance function named by `kind` with the given options.
/// LCSS is returned in its distance form (1 - LCSS/min-length) so that
/// smaller is always more similar, uniformly across kinds.
DistanceFn MakeDistance(DistanceKind kind, const DistanceOptions& options);

/// Short display name ("Eu", "DTW", "ERP", "LCSS", "EDR") matching the
/// paper's table headers.
const char* DistanceKindName(DistanceKind kind);

/// All five kinds in the paper's column order, for sweeping.
inline constexpr DistanceKind kAllDistanceKinds[] = {
    DistanceKind::kEuclidean, DistanceKind::kDtw, DistanceKind::kErp,
    DistanceKind::kLcss, DistanceKind::kEdr};

}  // namespace edr

#endif  // EDR_DISTANCE_DISTANCE_H_
