#ifndef EDR_DISTANCE_DISTANCE3_H_
#define EDR_DISTANCE_DISTANCE3_H_

#include <cstddef>

#include "core/trajectory3.h"

namespace edr {

/// The five distance functions for three-dimensional trajectories —
/// identical definitions to the 2-D versions (Section 2: "all the
/// definitions, theorems, and techniques can be extended to more than two
/// dimensions"), instantiated from the same dimension-generic DP kernels.

/// Lockstep Euclidean distance; +infinity when lengths differ.
double EuclideanDistance(const Trajectory3& r, const Trajectory3& s);

/// Sliding Euclidean distance (shorter slides along longer).
double SlidingEuclideanDistance(const Trajectory3& r, const Trajectory3& s);

double DtwDistance(const Trajectory3& r, const Trajectory3& s);
double DtwDistanceBanded(const Trajectory3& r, const Trajectory3& s,
                         int band);

double ErpDistance(const Trajectory3& r, const Trajectory3& s,
                   Point3 gap = {0.0, 0.0, 0.0});
double ErpDistanceBanded(const Trajectory3& r, const Trajectory3& s, int band,
                         Point3 gap = {0.0, 0.0, 0.0});

size_t LcssLength(const Trajectory3& r, const Trajectory3& s, double epsilon);
size_t LcssLengthBanded(const Trajectory3& r, const Trajectory3& s,
                        double epsilon, int band);
double LcssDistance(const Trajectory3& r, const Trajectory3& s,
                    double epsilon);

int EdrDistance(const Trajectory3& r, const Trajectory3& s, double epsilon);
int EdrDistanceBanded(const Trajectory3& r, const Trajectory3& s,
                      double epsilon, int band);
int EdrDistanceBounded(const Trajectory3& r, const Trajectory3& s,
                       double epsilon, int bound);

}  // namespace edr

#endif  // EDR_DISTANCE_DISTANCE3_H_
