#ifndef EDR_DISTANCE_FRECHET_H_
#define EDR_DISTANCE_FRECHET_H_

#include "core/trajectory.h"

namespace edr {

/// Discrete Fréchet distance ("dog-leash distance"): the minimum over all
/// monotone couplings of the maximum element distance. A classic
/// trajectory measure included for comparison with EDR — like DTW it
/// handles local time shifting, and like DTW a single outlier dominates
/// it completely (the max makes it even more noise-sensitive than DTW's
/// sum, which is the paper's central criticism of the L_p family).
/// O(m*n) time, O(min side) space. Returns +infinity when exactly one
/// trajectory is empty, 0 when both are.
double DiscreteFrechetDistance(const Trajectory& r, const Trajectory& s);

/// Hausdorff distance: max over elements of one trajectory of the
/// distance to the nearest element of the other, symmetrized. The paper
/// cites it (Section 4) as a prototypical *robust image* distance that
/// violates the triangle inequality; for trajectories it ignores ordering
/// entirely, which is why the paper's measures operate on sequences.
/// O(m*n) time. Returns +infinity when exactly one trajectory is empty.
double HausdorffDistance(const Trajectory& r, const Trajectory& s);

}  // namespace edr

#endif  // EDR_DISTANCE_FRECHET_H_
