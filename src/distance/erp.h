#ifndef EDR_DISTANCE_ERP_H_
#define EDR_DISTANCE_ERP_H_

#include "core/trajectory.h"

namespace edr {

/// Edit distance with Real Penalty (Figure 2, Formula 3; Chen & Ng,
/// VLDB'04):
///
///   ERP(R, S) = min{ ERP(Rest(R), Rest(S)) + dist(r1, s1),
///                    ERP(Rest(R), S)       + dist(r1, g),
///                    ERP(R, Rest(S))       + dist(s1, g) },
///
/// with base cases ERP(R, empty) = sum_i dist(r_i, g) and symmetrically.
/// `g` is the constant gap element. We use the true L2 element distance
/// (not the squared form) so that ERP is a metric — squared distances
/// violate the triangle inequality, and metricity is the property the
/// paper highlights for ERP. The gap defaults to the origin, which is the
/// mean of every z-score-normalized trajectory.
double ErpDistance(const Trajectory& r, const Trajectory& s,
                   Point2 gap = {0.0, 0.0});

/// ERP constrained to a Sakoe-Chiba band of the given half-width (widened
/// to |m - n| so the final cell stays reachable). `band < 0` means
/// unconstrained.
double ErpDistanceBanded(const Trajectory& r, const Trajectory& s, int band,
                         Point2 gap = {0.0, 0.0});

}  // namespace edr

#endif  // EDR_DISTANCE_ERP_H_
