#ifndef EDR_DISTANCE_ELASTIC_H_
#define EDR_DISTANCE_ELASTIC_H_

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <vector>

namespace edr {
namespace elastic {

/// Dimension-generic implementations of the four elastic distance DPs
/// (DTW, ERP, LCSS, EDR). The paper defines everything for the x-y plane
/// and notes that "all the definitions, theorems, and techniques can be
/// extended to more than two dimensions" (Section 2); these templates are
/// that extension. The 2-D (`Trajectory`) and 3-D (`Trajectory3`) public
/// kernels are thin wrappers around them.
///
/// Requirements on `TrajectoryT`: `size()` and `operator[](size_t)`
/// returning a point; on the point type: free functions `SquaredDist`,
/// `L2Dist`, and `Match(a, b, epsilon)` findable by ADL.
///
/// All functions take a Sakoe-Chiba `band` half-width; negative means
/// unconstrained. The band is always widened to the length difference so
/// the final DP cell stays reachable.

namespace internal {

inline long EffectiveBand(size_t m, size_t n, int band) {
  const long len_gap = std::labs(static_cast<long>(m) - static_cast<long>(n));
  return band < 0 ? static_cast<long>(std::max(m, n))
                  : std::max<long>(band, len_gap);
}

}  // namespace internal

/// Dynamic Time Warping with squared-L2 ground distance (Formula 2).
template <typename TrajectoryT>
double Dtw(const TrajectoryT& r, const TrajectoryT& s, int band) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const size_t m = r.size();
  const size_t n = s.size();
  if (m == 0 && n == 0) return 0.0;
  if (m == 0 || n == 0) return kInf;

  const long width = internal::EffectiveBand(m, n, band);
  std::vector<double> prev(n + 1, kInf);
  std::vector<double> curr(n + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= m; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const long lo = std::max<long>(1, static_cast<long>(i) - width);
    const long hi =
        std::min<long>(static_cast<long>(n), static_cast<long>(i) + width);
    for (long j = lo; j <= hi; ++j) {
      const double d = SquaredDist(r[i - 1], s[static_cast<size_t>(j) - 1]);
      const double best = std::min({prev[j - 1], prev[j], curr[j - 1]});
      curr[j] = best == kInf ? kInf : d + best;
    }
    std::swap(prev, curr);
  }
  return prev[n];
}

/// Edit distance with Real Penalty with L2 ground distance and a constant
/// gap element (Formula 3).
template <typename TrajectoryT, typename PointT>
double Erp(const TrajectoryT& r, const TrajectoryT& s, int band, PointT gap) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const size_t m = r.size();
  const size_t n = s.size();
  const long width = internal::EffectiveBand(m, n, band);

  std::vector<double> prev(n + 1, kInf);
  std::vector<double> curr(n + 1, kInf);
  prev[0] = 0.0;
  for (size_t j = 1; j <= n && static_cast<long>(j) <= width; ++j) {
    prev[j] = prev[j - 1] + L2Dist(s[j - 1], gap);
  }

  for (size_t i = 1; i <= m; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const long lo = std::max<long>(0, static_cast<long>(i) - width);
    const long hi =
        std::min<long>(static_cast<long>(n), static_cast<long>(i) + width);
    for (long j = lo; j <= hi; ++j) {
      if (j == 0) {
        curr[0] = prev[0] + L2Dist(r[i - 1], gap);
        continue;
      }
      const size_t sj = static_cast<size_t>(j) - 1;
      double best = kInf;
      if (prev[j - 1] < kInf) best = prev[j - 1] + L2Dist(r[i - 1], s[sj]);
      if (prev[j] < kInf) {
        best = std::min(best, prev[j] + L2Dist(r[i - 1], gap));
      }
      if (curr[j - 1] < kInf) {
        best = std::min(best, curr[j - 1] + L2Dist(s[sj], gap));
      }
      curr[j] = best;
    }
    std::swap(prev, curr);
  }
  return prev[n];
}

/// Longest Common Subsequence score under epsilon-matching (Formula 4).
template <typename TrajectoryT>
size_t Lcss(const TrajectoryT& r, const TrajectoryT& s, double epsilon,
            int band) {
  const size_t m = r.size();
  const size_t n = s.size();
  if (m == 0 || n == 0) return 0;

  const long width = internal::EffectiveBand(m, n, band);
  std::vector<size_t> prev(n + 1, 0);
  std::vector<size_t> curr(n + 1, 0);
  for (size_t i = 1; i <= m; ++i) {
    std::fill(curr.begin(), curr.end(), 0);
    const long lo = std::max<long>(1, static_cast<long>(i) - width);
    const long hi =
        std::min<long>(static_cast<long>(n), static_cast<long>(i) + width);
    for (long j = lo; j <= hi; ++j) {
      const size_t sj = static_cast<size_t>(j) - 1;
      if (Match(r[i - 1], s[sj], epsilon)) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  return prev[n];
}

/// Edit Distance on Real sequence (Definition 2).
template <typename TrajectoryT>
int Edr(const TrajectoryT& r, const TrajectoryT& s, double epsilon,
        int band) {
  constexpr int kUnreachable = std::numeric_limits<int>::max() / 2;
  const size_t m = r.size();
  const size_t n = s.size();
  if (m == 0) return static_cast<int>(n);
  if (n == 0) return static_cast<int>(m);

  const long width = internal::EffectiveBand(m, n, band);
  std::vector<int> prev(n + 1, kUnreachable);
  std::vector<int> curr(n + 1, kUnreachable);
  for (size_t j = 0; j <= n && static_cast<long>(j) <= width; ++j) {
    prev[j] = static_cast<int>(j);
  }

  for (size_t i = 1; i <= m; ++i) {
    std::fill(curr.begin(), curr.end(), kUnreachable);
    const long lo = std::max<long>(0, static_cast<long>(i) - width);
    const long hi =
        std::min<long>(static_cast<long>(n), static_cast<long>(i) + width);
    for (long j = lo; j <= hi; ++j) {
      if (j == 0) {
        curr[0] = static_cast<int>(i);
        continue;
      }
      const size_t sj = static_cast<size_t>(j) - 1;
      const int subcost = Match(r[i - 1], s[sj], epsilon) ? 0 : 1;
      curr[j] = std::min({prev[j - 1] + subcost,  // replace / match
                          prev[j] + 1,            // delete from R
                          curr[j - 1] + 1});      // insert into R
    }
    std::swap(prev, curr);
  }
  return prev[n];
}

/// Early-abandoning EDR: exact when the result is <= bound, otherwise
/// returns some lower bound strictly greater than `bound` (every edit path
/// crosses every DP row, so the row minimum bounds the final value).
template <typename TrajectoryT>
int EdrBounded(const TrajectoryT& r, const TrajectoryT& s, double epsilon,
               int bound) {
  const size_t m = r.size();
  const size_t n = s.size();
  if (m == 0) return static_cast<int>(n);
  if (n == 0) return static_cast<int>(m);

  const int length_bound = static_cast<int>(
      std::labs(static_cast<long>(m) - static_cast<long>(n)));
  if (length_bound > bound) return length_bound;

  std::vector<int> prev(n + 1);
  std::vector<int> curr(n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = static_cast<int>(j);

  for (size_t i = 1; i <= m; ++i) {
    curr[0] = static_cast<int>(i);
    int row_min = curr[0];
    for (size_t j = 1; j <= n; ++j) {
      const int subcost = Match(r[i - 1], s[j - 1], epsilon) ? 0 : 1;
      curr[j] = std::min({prev[j - 1] + subcost, prev[j] + 1, curr[j - 1] + 1});
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > bound) return row_min;
    std::swap(prev, curr);
  }
  return prev[n];
}

}  // namespace elastic
}  // namespace edr

#endif  // EDR_DISTANCE_ELASTIC_H_
