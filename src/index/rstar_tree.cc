#include "index/rstar_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

namespace edr {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Rect Rect::Union(const Rect& a, const Rect& b) {
  return {std::min(a.min_x, b.min_x), std::min(a.min_y, b.min_y),
          std::max(a.max_x, b.max_x), std::max(a.max_y, b.max_y)};
}

double Rect::OverlapArea(const Rect& a, const Rect& b) {
  const double w =
      std::min(a.max_x, b.max_x) - std::max(a.min_x, b.min_x);
  const double h =
      std::min(a.max_y, b.max_y) - std::max(a.min_y, b.min_y);
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

double Rect::Enlargement(const Rect& a, const Rect& b) {
  return Union(a, b).Area() - a.Area();
}

/// An entry is either (rect, payload) in a leaf or (rect, child) in an
/// internal node; `child == nullptr` distinguishes the two.
struct RStarTree::Entry {
  Rect rect;
  uint32_t value = 0;
  std::unique_ptr<Node> child;
};

struct RStarTree::Node {
  int level = 0;  // 0 = leaf.
  std::vector<Entry> entries;

  bool leaf() const { return level == 0; }

  Rect Mbr() const {
    Rect r = entries.front().rect;
    for (size_t i = 1; i < entries.size(); ++i) {
      r = Rect::Union(r, entries[i].rect);
    }
    return r;
  }
};

RStarTree::RStarTree(int max_entries)
    : root_(std::make_unique<Node>()),
      max_entries_(std::max(4, max_entries)),
      min_entries_(std::max(2, max_entries_ * 2 / 5)),
      reinsert_count_(std::max(1, max_entries_ * 3 / 10)) {}

RStarTree::~RStarTree() = default;
RStarTree::RStarTree(RStarTree&&) noexcept = default;
RStarTree& RStarTree::operator=(RStarTree&&) noexcept = default;

void RStarTree::Insert(Point2 p, uint32_t value) {
  reinserted_on_level_.assign(root_->level + 1, false);
  Entry entry;
  entry.rect = Rect::ForPoint(p);
  entry.value = value;
  InsertAtLevel(std::move(entry), 0, /*forbid_reinsert=*/false);
  ++size_;
}

RStarTree::Node* RStarTree::ChooseSubtree(const Rect& rect, int target_level,
                                          std::vector<Node*>& path) const {
  Node* node = root_.get();
  path.push_back(node);
  while (node->level > target_level) {
    size_t best = 0;
    if (node->level == 1) {
      // Children are leaves: minimize overlap enlargement, breaking ties by
      // area enlargement, then by area (R* ChooseSubtree).
      double best_overlap = kInf;
      double best_enlarge = kInf;
      double best_area = kInf;
      for (size_t i = 0; i < node->entries.size(); ++i) {
        const Rect& child_rect = node->entries[i].rect;
        const Rect enlarged = Rect::Union(child_rect, rect);
        double overlap_delta = 0.0;
        for (size_t j = 0; j < node->entries.size(); ++j) {
          if (j == i) continue;
          overlap_delta +=
              Rect::OverlapArea(enlarged, node->entries[j].rect) -
              Rect::OverlapArea(child_rect, node->entries[j].rect);
        }
        const double enlarge = Rect::Enlargement(child_rect, rect);
        const double area = child_rect.Area();
        if (overlap_delta < best_overlap ||
            (overlap_delta == best_overlap && enlarge < best_enlarge) ||
            (overlap_delta == best_overlap && enlarge == best_enlarge &&
             area < best_area)) {
          best = i;
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
    } else {
      // Minimize area enlargement, ties by area.
      double best_enlarge = kInf;
      double best_area = kInf;
      for (size_t i = 0; i < node->entries.size(); ++i) {
        const Rect& child_rect = node->entries[i].rect;
        const double enlarge = Rect::Enlargement(child_rect, rect);
        const double area = child_rect.Area();
        if (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best = i;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
    }
    node->entries[best].rect = Rect::Union(node->entries[best].rect, rect);
    node = node->entries[best].child.get();
    path.push_back(node);
  }
  return node;
}

void RStarTree::InsertAtLevel(Entry entry, int target_level,
                              bool forbid_reinsert) {
  std::vector<Node*> path;
  Node* node = ChooseSubtree(entry.rect, target_level, path);
  node->entries.push_back(std::move(entry));
  if (static_cast<int>(node->entries.size()) > max_entries_) {
    OverflowTreatment(node, path, forbid_reinsert);
  } else {
    RecomputeRects(path);
  }
}

void RStarTree::OverflowTreatment(Node* node, std::vector<Node*>& path,
                                  bool forbid_reinsert) {
  const bool is_root = node == root_.get();
  const size_t level = static_cast<size_t>(node->level);
  if (!is_root && !forbid_reinsert && level < reinserted_on_level_.size() &&
      !reinserted_on_level_[level]) {
    reinserted_on_level_[level] = true;
    Reinsert(node, path);
  } else {
    SplitNode(node, path);
  }
}

void RStarTree::Reinsert(Node* node, std::vector<Node*>& path) {
  // Sort entries by distance of their center from the node MBR center, and
  // remove the p farthest ("far reinsert"), then reinsert them top-down.
  const Point2 center = node->Mbr().Center();
  std::vector<size_t> order(node->entries.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return SquaredDist(node->entries[a].rect.Center(), center) >
           SquaredDist(node->entries[b].rect.Center(), center);
  });

  std::vector<Entry> removed;
  removed.reserve(reinsert_count_);
  std::vector<bool> is_removed(node->entries.size(), false);
  for (int i = 0; i < reinsert_count_; ++i) is_removed[order[i]] = true;

  std::vector<Entry> kept;
  kept.reserve(node->entries.size() - reinsert_count_);
  for (size_t i = 0; i < node->entries.size(); ++i) {
    if (is_removed[i]) {
      removed.push_back(std::move(node->entries[i]));
    } else {
      kept.push_back(std::move(node->entries[i]));
    }
  }
  node->entries = std::move(kept);
  RecomputeRects(path);

  const int level = node->level;
  for (Entry& e : removed) {
    // A reinsert may itself overflow; forbid recursive reinsertion at this
    // level (the flag is already set, but the root may have grown and
    // resized the flag vector, so pass an explicit guard too).
    InsertAtLevel(std::move(e), level, /*forbid_reinsert=*/true);
  }
}

void RStarTree::SplitNode(Node* node, std::vector<Node*>& path) {
  // R* topological split. Choose the split axis minimizing the sum of
  // margins over all candidate distributions, then the distribution with
  // minimal overlap (ties: minimal total area).
  const int total = static_cast<int>(node->entries.size());
  const int min_k = min_entries_;
  const int max_k = total - min_entries_;

  auto evaluate_axis = [&](bool by_x, std::vector<size_t>& order) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const Rect& ra = node->entries[a].rect;
      const Rect& rb = node->entries[b].rect;
      if (by_x) {
        if (ra.min_x != rb.min_x) return ra.min_x < rb.min_x;
        return ra.max_x < rb.max_x;
      }
      if (ra.min_y != rb.min_y) return ra.min_y < rb.min_y;
      return ra.max_y < rb.max_y;
    });
    // Prefix/suffix MBRs for O(n) margin evaluation.
    std::vector<Rect> prefix(total);
    std::vector<Rect> suffix(total);
    prefix[0] = node->entries[order[0]].rect;
    for (int i = 1; i < total; ++i) {
      prefix[i] = Rect::Union(prefix[i - 1], node->entries[order[i]].rect);
    }
    suffix[total - 1] = node->entries[order[total - 1]].rect;
    for (int i = total - 2; i >= 0; --i) {
      suffix[i] = Rect::Union(suffix[i + 1], node->entries[order[i]].rect);
    }
    double margin_sum = 0.0;
    for (int k = min_k; k <= max_k; ++k) {
      margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    return std::make_tuple(margin_sum, std::move(prefix), std::move(suffix));
  };

  std::vector<size_t> order_x(total);
  std::vector<size_t> order_y(total);
  auto [margin_x, prefix_x, suffix_x] = evaluate_axis(true, order_x);
  auto [margin_y, prefix_y, suffix_y] = evaluate_axis(false, order_y);

  const bool use_x = margin_x <= margin_y;
  const std::vector<size_t>& order = use_x ? order_x : order_y;
  const std::vector<Rect>& prefix = use_x ? prefix_x : prefix_y;
  const std::vector<Rect>& suffix = use_x ? suffix_x : suffix_y;

  int best_k = min_k;
  double best_overlap = kInf;
  double best_area = kInf;
  for (int k = min_k; k <= max_k; ++k) {
    const double overlap = Rect::OverlapArea(prefix[k - 1], suffix[k]);
    const double area = prefix[k - 1].Area() + suffix[k].Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_k = k;
      best_overlap = overlap;
      best_area = area;
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->level = node->level;
  std::vector<Entry> first_group;
  first_group.reserve(best_k);
  for (int i = 0; i < best_k; ++i) {
    first_group.push_back(std::move(node->entries[order[i]]));
  }
  for (int i = best_k; i < total; ++i) {
    sibling->entries.push_back(std::move(node->entries[order[i]]));
  }
  node->entries = std::move(first_group);

  if (node == root_.get()) {
    // Grow the tree: new root with the old root and its sibling as children.
    auto new_root = std::make_unique<Node>();
    new_root->level = node->level + 1;
    Entry left;
    left.rect = node->Mbr();
    left.child = std::move(root_);
    Entry right;
    right.rect = sibling->Mbr();
    right.child = std::move(sibling);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
    reinserted_on_level_.resize(root_->level + 1, true);
    return;
  }

  // Attach the sibling to the parent and fix rectangles; the parent itself
  // may now overflow.
  path.pop_back();
  Node* parent = path.back();
  for (Entry& e : parent->entries) {
    if (e.child.get() == node) {
      e.rect = node->Mbr();
      break;
    }
  }
  Entry sibling_entry;
  sibling_entry.rect = sibling->Mbr();
  sibling_entry.child = std::move(sibling);
  parent->entries.push_back(std::move(sibling_entry));
  if (static_cast<int>(parent->entries.size()) > max_entries_) {
    OverflowTreatment(parent, path, /*forbid_reinsert=*/false);
  } else {
    RecomputeRects(path);
  }
}

void RStarTree::RecomputeRects(std::vector<Node*>& path) {
  // Walk from the deepest node up, tightening each parent entry's rect.
  for (size_t i = path.size(); i-- > 1;) {
    Node* child = path[i];
    Node* parent = path[i - 1];
    for (Entry& e : parent->entries) {
      if (e.child.get() == child) {
        e.rect = child->Mbr();
        break;
      }
    }
  }
}

bool RStarTree::DeleteRec(Node* node, Point2 p, uint32_t value,
                          std::vector<std::pair<Entry, int>>& orphans) {
  if (node->leaf()) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      const Entry& e = node->entries[i];
      if (e.value == value && e.rect.min_x == p.x && e.rect.min_y == p.y &&
          e.rect.max_x == p.x && e.rect.max_y == p.y) {
        node->entries.erase(node->entries.begin() + static_cast<long>(i));
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    Entry& e = node->entries[i];
    if (!e.rect.Contains(p)) continue;
    Node* child = e.child.get();
    if (!DeleteRec(child, p, value, orphans)) continue;
    // Condense underfull children — except a root's only child, which the
    // root-collapse step will absorb instead (orphaning it would leave an
    // empty internal root with nowhere to reinsert).
    const bool keep_for_collapse =
        node == root_.get() && node->entries.size() == 1;
    if (child->entries.empty()) {
      // A drained leaf (possible only under a thin root): drop it.
      node->entries.erase(node->entries.begin() + static_cast<long>(i));
    } else if (static_cast<int>(child->entries.size()) < min_entries_ &&
               !keep_for_collapse) {
      // Condense: orphan the underfull child's entries for reinsertion at
      // their level and drop the child.
      const int child_level = child->level;
      for (Entry& orphan : child->entries) {
        orphans.emplace_back(std::move(orphan), child_level);
      }
      node->entries.erase(node->entries.begin() + static_cast<long>(i));
    } else {
      e.rect = child->Mbr();
    }
    return true;
  }
  return false;
}

bool RStarTree::Delete(Point2 p, uint32_t value) {
  std::vector<std::pair<Entry, int>> orphans;
  if (!DeleteRec(root_.get(), p, value, orphans)) return false;
  --size_;

  // Reinsert orphaned entries at their original levels, higher levels
  // first so their target level still exists.
  std::stable_sort(orphans.begin(), orphans.end(),
                   [](const std::pair<Entry, int>& a,
                      const std::pair<Entry, int>& b) {
                     return a.second > b.second;
                   });
  for (auto& [entry, level] : orphans) {
    reinserted_on_level_.assign(root_->level + 1, true);
    InsertAtLevel(std::move(entry), level, /*forbid_reinsert=*/true);
  }

  // Collapse a root with a single child (the tree shrinks); an internal
  // root drained of every entry resets to an empty leaf.
  while (!root_->leaf() && root_->entries.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->entries[0].child);
    root_ = std::move(child);
  }
  if (!root_->leaf() && root_->entries.empty()) {
    root_ = std::make_unique<Node>();
  }
  return true;
}

RStarTree RStarTree::BulkLoad(std::vector<std::pair<Point2, uint32_t>> items,
                              int max_entries) {
  RStarTree tree(max_entries);
  tree.size_ = items.size();
  if (items.empty()) return tree;
  const size_t capacity = static_cast<size_t>(tree.max_entries_);

  // Level 0: Sort-Tile-Recursive leaf packing.
  std::sort(items.begin(), items.end(),
            [](const std::pair<Point2, uint32_t>& a,
               const std::pair<Point2, uint32_t>& b) {
              if (a.first.x != b.first.x) return a.first.x < b.first.x;
              return a.first.y < b.first.y;
            });
  const size_t num_leaves = (items.size() + capacity - 1) / capacity;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slab_size =
      (items.size() + num_slabs - 1) / num_slabs;

  std::vector<std::unique_ptr<Node>> level;
  for (size_t slab_begin = 0; slab_begin < items.size();
       slab_begin += slab_size) {
    const size_t slab_end = std::min(items.size(), slab_begin + slab_size);
    std::sort(items.begin() + static_cast<long>(slab_begin),
              items.begin() + static_cast<long>(slab_end),
              [](const std::pair<Point2, uint32_t>& a,
                 const std::pair<Point2, uint32_t>& b) {
                if (a.first.y != b.first.y) return a.first.y < b.first.y;
                return a.first.x < b.first.x;
              });
    for (size_t begin = slab_begin; begin < slab_end; begin += capacity) {
      size_t end = std::min(slab_end, begin + capacity);
      // Avoid an undersized trailing node: split the remainder evenly
      // with this node so both respect the minimum fill.
      const size_t remaining_after = slab_end - end;
      if (remaining_after > 0 &&
          remaining_after < static_cast<size_t>(tree.min_entries_)) {
        end = begin + (slab_end - begin + 1) / 2;
      }
      auto node = std::make_unique<Node>();
      node->level = 0;
      for (size_t i = begin; i < end; ++i) {
        Entry e;
        e.rect = Rect::ForPoint(items[i].first);
        e.value = items[i].second;
        node->entries.push_back(std::move(e));
      }
      level.push_back(std::move(node));
      begin = end - capacity;  // Loop adds capacity back.
    }
  }

  // Upper levels: pack child rectangles with the same STR sweep until a
  // single root remains.
  int current_level = 0;
  while (level.size() > 1) {
    ++current_level;
    std::sort(level.begin(), level.end(),
              [](const std::unique_ptr<Node>& a,
                 const std::unique_ptr<Node>& b) {
                const Point2 ca = a->Mbr().Center();
                const Point2 cb = b->Mbr().Center();
                if (ca.x != cb.x) return ca.x < cb.x;
                return ca.y < cb.y;
              });
    const size_t num_parents = (level.size() + capacity - 1) / capacity;
    const size_t parent_slabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_parents))));
    const size_t parent_slab_size =
        (level.size() + parent_slabs - 1) / parent_slabs;
    for (size_t slab_begin = 0; slab_begin < level.size();
         slab_begin += parent_slab_size) {
      const size_t slab_end =
          std::min(level.size(), slab_begin + parent_slab_size);
      std::sort(level.begin() + static_cast<long>(slab_begin),
                level.begin() + static_cast<long>(slab_end),
                [](const std::unique_ptr<Node>& a,
                   const std::unique_ptr<Node>& b) {
                  const Point2 ca = a->Mbr().Center();
                  const Point2 cb = b->Mbr().Center();
                  if (ca.y != cb.y) return ca.y < cb.y;
                  return ca.x < cb.x;
                });
    }

    std::vector<std::unique_ptr<Node>> parents;
    for (size_t begin = 0; begin < level.size(); begin += capacity) {
      size_t end = std::min(level.size(), begin + capacity);
      const size_t remaining_after = level.size() - end;
      if (remaining_after > 0 &&
          remaining_after < static_cast<size_t>(tree.min_entries_)) {
        end = begin + (level.size() - begin + 1) / 2;
      }
      auto parent = std::make_unique<Node>();
      parent->level = current_level;
      for (size_t i = begin; i < end; ++i) {
        Entry e;
        e.rect = level[i]->Mbr();
        e.child = std::move(level[i]);
        parent->entries.push_back(std::move(e));
      }
      parents.push_back(std::move(parent));
      begin = end - capacity;
    }
    level = std::move(parents);
  }

  tree.root_ = std::move(level.front());
  return tree;
}

void RStarTree::SearchRange(const Rect& query,
                            const std::function<void(uint32_t)>& visit) const {
  if (size_ == 0) return;
  // Iterative DFS to avoid exposing Node in the header's private section
  // via free functions.
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries) {
      if (!query.Intersects(e.rect)) continue;
      if (node->leaf()) {
        visit(e.value);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
}

std::vector<uint32_t> RStarTree::SearchRange(const Rect& query) const {
  std::vector<uint32_t> out;
  SearchRange(query, [&out](uint32_t v) { out.push_back(v); });
  return out;
}

int RStarTree::height() const { return root_->level + 1; }

bool RStarTree::Validate() const {
  bool ok = true;
  size_t leaf_entries = 0;
  // DFS with (node, is_root) pairs.
  std::vector<std::pair<const Node*, bool>> stack{{root_.get(), true}};
  while (!stack.empty() && ok) {
    auto [node, is_root] = stack.back();
    stack.pop_back();
    const int count = static_cast<int>(node->entries.size());
    if (!is_root && (count < min_entries_ || count > max_entries_)) ok = false;
    if (is_root && count > max_entries_) ok = false;
    if (node->leaf()) {
      leaf_entries += node->entries.size();
      for (const Entry& e : node->entries) {
        if (e.child) ok = false;
      }
    } else {
      for (const Entry& e : node->entries) {
        if (!e.child || e.child->level != node->level - 1) {
          ok = false;
          break;
        }
        // Parent rect must tightly equal the child MBR.
        const Rect mbr = e.child->Mbr();
        if (mbr.min_x != e.rect.min_x || mbr.min_y != e.rect.min_y ||
            mbr.max_x != e.rect.max_x || mbr.max_y != e.rect.max_y) {
          ok = false;
          break;
        }
        stack.push_back({e.child.get(), false});
      }
    }
  }
  return ok && leaf_entries == size_;
}

}  // namespace edr
