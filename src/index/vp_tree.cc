#include "index/vp_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

namespace edr {

/// Inner nodes hold a vantage item and the median distance `threshold`;
/// `inside` holds items with d(v, x) <= threshold, `outside` the rest.
struct VpTree::Node {
  uint32_t vantage = 0;
  double threshold = 0.0;
  std::unique_ptr<Node> inside;
  std::unique_ptr<Node> outside;
};

namespace {

// SplitMix64 step for deterministic vantage selection without dragging a
// full Rng into the index.
inline uint64_t NextState(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

VpTree::VpTree(size_t n, const ItemDistance& distance, uint64_t seed)
    : size_(n) {
  std::vector<uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  uint64_t state = seed;
  if (n > 0) root_ = Build(ids, 0, n, distance, state);
}

VpTree::~VpTree() = default;
VpTree::VpTree(VpTree&&) noexcept = default;
VpTree& VpTree::operator=(VpTree&&) noexcept = default;

std::unique_ptr<VpTree::Node> VpTree::Build(std::vector<uint32_t>& ids,
                                            size_t begin, size_t end,
                                            const ItemDistance& distance,
                                            uint64_t& state) {
  if (begin >= end) return nullptr;
  auto node = std::make_unique<Node>();

  // Random vantage point; swap it to the front of the range.
  const size_t pick = begin + NextState(state) % (end - begin);
  std::swap(ids[begin], ids[pick]);
  node->vantage = ids[begin];
  ++begin;
  if (begin == end) return node;

  // Partition the rest by the median distance to the vantage.
  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(ids.begin() + static_cast<long>(begin),
                   ids.begin() + static_cast<long>(mid),
                   ids.begin() + static_cast<long>(end),
                   [&](uint32_t a, uint32_t b) {
                     return distance(node->vantage, a) <
                            distance(node->vantage, b);
                   });
  node->threshold = distance(node->vantage, ids[mid]);

  // [begin, mid] inside (distances <= threshold includes the median),
  // (mid, end) outside.
  node->inside = Build(ids, begin, mid + 1, distance, state);
  node->outside = Build(ids, mid + 1, end, distance, state);
  return node;
}

namespace {

void SortNeighbors(std::vector<Neighbor>& neighbors) {
  std::sort(neighbors.begin(), neighbors.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
}

}  // namespace

std::vector<Neighbor> VpTree::Knn(const QueryDistance& distance, size_t k,
                                  size_t* distance_calls) const {
  KnnResultList result(k);
  size_t calls = 0;

  const std::function<void(const Node*)> visit = [&](const Node* node) {
    if (node == nullptr) return;
    const double d = distance(node->vantage);
    ++calls;
    result.Offer(node->vantage, d);
    const double tau = result.KthDistance();
    // Triangle inequality: items inside are within threshold of the
    // vantage, so their distance to the query is at least d - threshold;
    // symmetrically for outside. Visit the nearer side first.
    if (d <= node->threshold) {
      if (d - tau <= node->threshold) visit(node->inside.get());
      if (d + result.KthDistance() >= node->threshold) {
        visit(node->outside.get());
      }
    } else {
      if (d + tau >= node->threshold) visit(node->outside.get());
      if (d - result.KthDistance() <= node->threshold) {
        visit(node->inside.get());
      }
    }
  };
  visit(root_.get());

  if (distance_calls != nullptr) *distance_calls = calls;
  std::vector<Neighbor> neighbors = std::move(result).TakeNeighbors();
  SortNeighbors(neighbors);
  return neighbors;
}

std::vector<Neighbor> VpTree::Range(const QueryDistance& distance,
                                    double radius,
                                    size_t* distance_calls) const {
  std::vector<Neighbor> out;
  size_t calls = 0;
  const std::function<void(const Node*)> visit = [&](const Node* node) {
    if (node == nullptr) return;
    const double d = distance(node->vantage);
    ++calls;
    if (d <= radius) out.push_back({node->vantage, d});
    if (d - radius <= node->threshold) visit(node->inside.get());
    if (d + radius >= node->threshold) visit(node->outside.get());
  };
  visit(root_.get());
  if (distance_calls != nullptr) *distance_calls = calls;
  SortNeighbors(out);
  return out;
}

}  // namespace edr
