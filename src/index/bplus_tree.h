#ifndef EDR_INDEX_BPLUS_TREE_H_
#define EDR_INDEX_BPLUS_TREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace edr {

/// An in-memory B+-tree mapping double keys to uint32 payloads, with
/// duplicate keys allowed.
///
/// Substrate for the paper's "PB" pruning variant (Section 4.1): the mean
/// value of every Q-gram of every *projected one-dimensional* data sequence
/// is inserted with the trajectory id as payload (Theorems 2 and 4 together
/// let a simple B+-tree replace a multi-dimensional index), and k-NN queries
/// probe with the range [mean - epsilon, mean + epsilon].
///
/// Leaves are chained for efficient range scans. Deletion is not provided —
/// the pruning indexes are built once per dataset and then only queried.
class BPlusTree {
 public:
  /// `order` is the maximum number of keys per node (>= 4).
  explicit BPlusTree(int order = 64);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Inserts a key/value pair. Duplicate keys are kept (stable within a
  /// leaf in insertion order modulo splits).
  void Insert(double key, uint32_t value);

  /// Removes one pair equal to (key, value); returns false when absent.
  /// Underflowing nodes borrow from a sibling or merge with it, and the
  /// root collapses when an internal root is left with one child.
  bool Delete(double key, uint32_t value);

  /// Invokes `visit(key, value)` for every pair with lo <= key <= hi, in
  /// non-decreasing key order.
  void SearchRange(double lo, double hi,
                   const std::function<void(double, uint32_t)>& visit) const;

  /// Convenience overload collecting the payloads in key order.
  std::vector<uint32_t> SearchRange(double lo, double hi) const;

  /// Number of stored pairs.
  size_t size() const { return size_; }

  /// Height of the tree (1 for a root-only tree).
  int height() const;

  /// Structural invariant check for tests: key ordering within and across
  /// nodes, separator correctness, fill factors, and leaf-chain coverage.
  bool Validate() const;

 private:
  struct Node;

  void SplitChild(Node* parent, int index);
  bool DeleteRec(Node* node, double key, uint32_t value);
  void RebalanceChild(Node* parent, size_t index);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int order_;
};

}  // namespace edr

#endif  // EDR_INDEX_BPLUS_TREE_H_
