#include "index/bplus_tree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace edr {

/// Internal nodes hold `keys` as separators with `children.size() ==
/// keys.size() + 1`; a key at index i separates children i and i+1 (keys in
/// child i are < keys[i], keys in child i+1 are >= keys[i]). Leaves hold
/// parallel `keys`/`values` and a `next` pointer forming the scan chain.
struct BPlusTree::Node {
  bool leaf = true;
  std::vector<double> keys;
  std::vector<uint32_t> values;                 // leaf only
  std::vector<std::unique_ptr<Node>> children;  // internal only
  Node* next = nullptr;                         // leaf chain
};

BPlusTree::BPlusTree(int order)
    : root_(std::make_unique<Node>()), order_(std::max(4, order)) {}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

void BPlusTree::SplitChild(Node* parent, int index) {
  Node* child = parent->children[static_cast<size_t>(index)].get();
  auto sibling = std::make_unique<Node>();
  sibling->leaf = child->leaf;

  const size_t mid = child->keys.size() / 2;
  double separator;
  if (child->leaf) {
    // Leaf split: the separator is copied up; the sibling keeps keys[mid..].
    separator = child->keys[mid];
    sibling->keys.assign(child->keys.begin() + mid, child->keys.end());
    sibling->values.assign(child->values.begin() + mid, child->values.end());
    child->keys.resize(mid);
    child->values.resize(mid);
    sibling->next = child->next;
    child->next = sibling.get();
  } else {
    // Internal split: the separator moves up; it belongs to neither side.
    separator = child->keys[mid];
    sibling->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      sibling->children.push_back(std::move(child->children[i]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }

  parent->keys.insert(parent->keys.begin() + index, separator);
  parent->children.insert(parent->children.begin() + index + 1,
                          std::move(sibling));
}

void BPlusTree::Insert(double key, uint32_t value) {
  if (static_cast<int>(root_->keys.size()) >= order_) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }

  Node* node = root_.get();
  while (!node->leaf) {
    // Descend into the child whose key range contains `key`; duplicates of a
    // separator key live in the right child (>= separator).
    const auto it =
        std::upper_bound(node->keys.begin(), node->keys.end(), key);
    size_t idx = static_cast<size_t>(it - node->keys.begin());
    Node* child = node->children[idx].get();
    if (static_cast<int>(child->keys.size()) >= order_) {
      SplitChild(node, static_cast<int>(idx));
      if (key >= node->keys[idx]) ++idx;
      child = node->children[idx].get();
    }
    node = child;
  }

  const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  const size_t pos = static_cast<size_t>(it - node->keys.begin());
  node->keys.insert(node->keys.begin() + pos, key);
  node->values.insert(node->values.begin() + pos, value);
  ++size_;
}

bool BPlusTree::DeleteRec(Node* node, double key, uint32_t value) {
  if (node->leaf) {
    const auto begin =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    for (size_t i = static_cast<size_t>(begin - node->keys.begin());
         i < node->keys.size() && node->keys[i] == key; ++i) {
      if (node->values[i] == value) {
        node->keys.erase(node->keys.begin() + static_cast<long>(i));
        node->values.erase(node->values.begin() + static_cast<long>(i));
        return true;
      }
    }
    return false;
  }
  // Duplicates of `key` may sit on either side of an equal separator, so
  // every child whose [lo, hi] range covers the key is a candidate.
  const size_t lb = static_cast<size_t>(
      std::lower_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  const size_t ub = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  for (size_t i = lb; i <= ub && i < node->children.size(); ++i) {
    if (!DeleteRec(node->children[i].get(), key, value)) continue;
    const size_t min_keys =
        std::max<size_t>(1, static_cast<size_t>(order_) / 3);
    if (node->children[i]->keys.size() < min_keys) {
      RebalanceChild(node, i);
    }
    return true;
  }
  return false;
}

void BPlusTree::RebalanceChild(Node* parent, size_t index) {
  if (parent->children.size() < 2) return;  // Root collapse handles this.
  Node* child = parent->children[index].get();
  const size_t min_keys =
      std::max<size_t>(1, static_cast<size_t>(order_) / 3);

  // Try borrowing from the left sibling.
  if (index > 0) {
    Node* left = parent->children[index - 1].get();
    if (left->keys.size() > min_keys) {
      if (child->leaf) {
        child->keys.insert(child->keys.begin(), left->keys.back());
        child->values.insert(child->values.begin(), left->values.back());
        left->keys.pop_back();
        left->values.pop_back();
        parent->keys[index - 1] = child->keys.front();
      } else {
        child->keys.insert(child->keys.begin(), parent->keys[index - 1]);
        child->children.insert(child->children.begin(),
                               std::move(left->children.back()));
        left->children.pop_back();
        parent->keys[index - 1] = left->keys.back();
        left->keys.pop_back();
      }
      return;
    }
  }
  // Try borrowing from the right sibling.
  if (index + 1 < parent->children.size()) {
    Node* right = parent->children[index + 1].get();
    if (right->keys.size() > min_keys) {
      if (child->leaf) {
        child->keys.push_back(right->keys.front());
        child->values.push_back(right->values.front());
        right->keys.erase(right->keys.begin());
        right->values.erase(right->values.begin());
        parent->keys[index] = right->keys.front();
      } else {
        child->keys.push_back(parent->keys[index]);
        child->children.push_back(std::move(right->children.front()));
        right->children.erase(right->children.begin());
        parent->keys[index] = right->keys.front();
        right->keys.erase(right->keys.begin());
      }
      return;
    }
  }
  // Merge with a sibling (into the left one of the pair).
  const size_t left_index = index > 0 ? index - 1 : index;
  Node* left = parent->children[left_index].get();
  Node* right = parent->children[left_index + 1].get();
  if (left->leaf) {
    left->keys.insert(left->keys.end(), right->keys.begin(),
                      right->keys.end());
    left->values.insert(left->values.end(), right->values.begin(),
                        right->values.end());
    left->next = right->next;
  } else {
    // Pull the separator down between the merged key runs.
    left->keys.push_back(parent->keys[left_index]);
    left->keys.insert(left->keys.end(), right->keys.begin(),
                      right->keys.end());
    for (auto& grandchild : right->children) {
      left->children.push_back(std::move(grandchild));
    }
  }
  parent->keys.erase(parent->keys.begin() + static_cast<long>(left_index));
  parent->children.erase(parent->children.begin() +
                         static_cast<long>(left_index) + 1);
}

bool BPlusTree::Delete(double key, uint32_t value) {
  if (!DeleteRec(root_.get(), key, value)) return false;
  --size_;
  while (!root_->leaf && root_->children.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->children[0]);
    root_ = std::move(child);
  }
  return true;
}

void BPlusTree::SearchRange(
    double lo, double hi,
    const std::function<void(double, uint32_t)>& visit) const {
  if (size_ == 0 || lo > hi) return;
  // Descend to the leftmost leaf that can contain `lo`.
  const Node* node = root_.get();
  while (!node->leaf) {
    const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), lo);
    // Keys equal to a separator are in the right child, but keys < lo are
    // irrelevant, so lower_bound (first separator >= lo) picks the leftmost
    // child that may hold keys >= lo.
    const size_t idx = static_cast<size_t>(it - node->keys.begin());
    node = node->children[idx].get();
  }
  // Walk the leaf chain.
  while (node != nullptr) {
    const auto start =
        std::lower_bound(node->keys.begin(), node->keys.end(), lo);
    for (size_t i = static_cast<size_t>(start - node->keys.begin());
         i < node->keys.size(); ++i) {
      if (node->keys[i] > hi) return;
      visit(node->keys[i], node->values[i]);
    }
    node = node->next;
  }
}

std::vector<uint32_t> BPlusTree::SearchRange(double lo, double hi) const {
  std::vector<uint32_t> out;
  SearchRange(lo, hi, [&out](double, uint32_t v) { out.push_back(v); });
  return out;
}

int BPlusTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

bool BPlusTree::Validate() const {
  // Recursive check with key-range propagation: every node's keys must be
  // sorted and within [lo, hi]; child i of an internal node covers
  // [keys[i-1], keys[i]) except that duplicates of the separator live in
  // the right child, so the left bound is inclusive and the right bound is
  // exclusive only up to duplicate boundaries — we check the weaker but
  // sufficient invariant lo <= k <= hi per node.
  size_t leaf_pairs = 0;
  const Node* prev_leaf = nullptr;
  bool ok = true;
  const std::function<void(const Node*, double, double, bool)> check =
      [&](const Node* node, double lo, double hi, bool is_root) {
        if (!ok) return;
        if (!is_root && node->keys.empty()) {
          ok = false;
          return;
        }
        if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
          ok = false;
          return;
        }
        for (double k : node->keys) {
          if (k < lo || k > hi) {
            ok = false;
            return;
          }
        }
        if (node->leaf) {
          if (node->keys.size() != node->values.size()) {
            ok = false;
            return;
          }
          leaf_pairs += node->keys.size();
          if (prev_leaf != nullptr && prev_leaf->next != node) {
            ok = false;
            return;
          }
          prev_leaf = node;
          return;
        }
        if (node->children.size() != node->keys.size() + 1 ||
            !node->values.empty()) {
          ok = false;
          return;
        }
        for (size_t i = 0; i < node->children.size(); ++i) {
          const double child_lo = i == 0 ? lo : node->keys[i - 1];
          const double child_hi = i == node->keys.size() ? hi : node->keys[i];
          check(node->children[i].get(), child_lo, child_hi, false);
        }
      };
  const double inf = std::numeric_limits<double>::infinity();
  check(root_.get(), -inf, inf, true);
  if (prev_leaf != nullptr && prev_leaf->next != nullptr) ok = false;
  return ok && leaf_pairs == size_;
}

}  // namespace edr
