#ifndef EDR_INDEX_RSTAR_TREE_H_
#define EDR_INDEX_RSTAR_TREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/point.h"

namespace edr {

/// An axis-aligned rectangle in the x-y plane.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  /// Degenerate rectangle covering a single point.
  static Rect ForPoint(Point2 p) { return {p.x, p.y, p.x, p.y}; }

  /// Axis-aligned box [cx - r, cx + r] x [cy - r, cy + r]; the query region
  /// for mean-value-pair matching with threshold r (Definition 1 lifted to
  /// Q-gram means by Theorem 2).
  static Rect Around(Point2 center, double radius) {
    return {center.x - radius, center.y - radius, center.x + radius,
            center.y + radius};
  }

  double Area() const { return (max_x - min_x) * (max_y - min_y); }
  double Margin() const { return 2.0 * ((max_x - min_x) + (max_y - min_y)); }
  Point2 Center() const {
    return {(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  }

  bool Intersects(const Rect& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }
  bool Contains(Point2 p) const {
    return min_x <= p.x && p.x <= max_x && min_y <= p.y && p.y <= max_y;
  }
  bool Contains(const Rect& o) const {
    return min_x <= o.min_x && o.max_x <= max_x && min_y <= o.min_y &&
           o.max_y <= max_y;
  }

  /// Smallest rectangle enclosing both operands.
  static Rect Union(const Rect& a, const Rect& b);
  /// Area of the intersection (0 when disjoint).
  static double OverlapArea(const Rect& a, const Rect& b);
  /// Area growth of `a` needed to enclose `b`.
  static double Enlargement(const Rect& a, const Rect& b);
};

/// An in-memory R*-tree over 2-D points with uint32 payloads.
///
/// Substrate for the paper's "PR" pruning variant (Section 4.1): the mean
/// value pair of every Q-gram of every trajectory is inserted with the
/// trajectory id as payload, and a k-NN query probes the tree with a square
/// region of half-width epsilon around each query-gram mean.
///
/// Implements the R*-tree of Beckmann et al. (SIGMOD'90): ChooseSubtree with
/// minimum overlap enlargement at the leaf level, forced reinsertion of the
/// 30% outermost entries on first overflow per level, and the topological
/// margin-driven split. Deletion is not provided — the pruning indexes are
/// built once per dataset and then only queried.
class RStarTree {
 public:
  /// `max_entries` is the node capacity M (>= 4); the minimum fill m is
  /// 40% of M and the forced-reinsert count p is 30% of M, the parameters
  /// recommended by the R*-tree paper.
  explicit RStarTree(int max_entries = 16);
  ~RStarTree();

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;
  RStarTree(RStarTree&&) noexcept;
  RStarTree& operator=(RStarTree&&) noexcept;

  /// Inserts a point with its payload. Duplicate points are allowed.
  void Insert(Point2 p, uint32_t value);

  /// Removes one entry equal to (p, value). Returns false when no such
  /// entry exists. Underfull nodes are condensed (their entries
  /// reinserted), as in Guttman's CondenseTree, and the root collapses
  /// when it is left with a single child.
  bool Delete(Point2 p, uint32_t value);

  /// Builds a tree bottom-up with Sort-Tile-Recursive packing: items are
  /// sorted by x, cut into vertical slabs, sorted by y within each slab,
  /// and packed into full nodes; upper levels pack the node rectangles
  /// the same way. Much faster than repeated insertion and yields high
  /// fill factors. The result answers queries identically to an
  /// insertion-built tree.
  static RStarTree BulkLoad(std::vector<std::pair<Point2, uint32_t>> items,
                            int max_entries = 16);

  /// Invokes `visit` for the payload of every indexed point inside `query`
  /// (boundary inclusive).
  void SearchRange(const Rect& query,
                   const std::function<void(uint32_t)>& visit) const;

  /// Convenience overload collecting payloads into a vector.
  std::vector<uint32_t> SearchRange(const Rect& query) const;

  /// Number of indexed points.
  size_t size() const { return size_; }

  /// Height of the tree (1 for a root-only tree).
  int height() const;

  /// Structural invariant check for tests: parent rectangles tightly bound
  /// children, fill factors are respected, and all leaves share one level.
  bool Validate() const;

 private:
  struct Node;
  struct Entry;

  Node* ChooseSubtree(const Rect& rect, int target_level,
                      std::vector<Node*>& path) const;
  bool DeleteRec(Node* node, Point2 p, uint32_t value,
                 std::vector<std::pair<Entry, int>>& orphans);
  void InsertAtLevel(Entry entry, int target_level, bool forbid_reinsert);
  void OverflowTreatment(Node* node, std::vector<Node*>& path,
                         bool forbid_reinsert);
  void Reinsert(Node* node, std::vector<Node*>& path);
  void SplitNode(Node* node, std::vector<Node*>& path);
  static void RecomputeRects(std::vector<Node*>& path);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int max_entries_;
  int min_entries_;
  int reinsert_count_;
  /// Levels that already performed a forced reinsert during the current
  /// public Insert() call (R* does this once per level per insertion).
  mutable std::vector<bool> reinserted_on_level_;
};

}  // namespace edr

#endif  // EDR_INDEX_RSTAR_TREE_H_
