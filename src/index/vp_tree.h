#ifndef EDR_INDEX_VP_TREE_H_
#define EDR_INDEX_VP_TREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "query/knn.h"

namespace edr {

/// A vantage-point tree: the classic "known distance access method" the
/// paper contrasts with its EDR filters ("Euclidean distance and ERP are
/// metric and they obey triangle inequality, therefore, they can be
/// indexed by known distance access methods, while DTW is not",
/// Section 2). The tree partitions items by distance to a vantage point
/// and prunes subtrees with the triangle inequality at query time.
///
/// The structure is distance-agnostic: it is built from a pairwise
/// distance oracle over item ids, and queried with a query-to-item
/// oracle. **Correctness requires the distance to be a metric.** Used
/// with ERP it returns exact answers; used with EDR it silently loses
/// neighbors — the demonstration behind the paper's decision to build
/// dedicated lossless filters instead (see bench_ablation).
class VpTree {
 public:
  /// Distance between two indexed items.
  using ItemDistance = std::function<double(uint32_t, uint32_t)>;
  /// Distance from the current query to an indexed item.
  using QueryDistance = std::function<double(uint32_t)>;

  /// Builds over items 0..n-1. O(n log n) oracle calls in expectation
  /// (median selection per level). `seed` controls vantage-point choice.
  VpTree(size_t n, const ItemDistance& distance, uint64_t seed = 1);
  ~VpTree();

  VpTree(VpTree&&) noexcept;
  VpTree& operator=(VpTree&&) noexcept;

  /// k nearest items to the query, ascending distance. `distance_calls`
  /// (when non-null) receives the number of oracle invocations — the
  /// VP-tree's analogue of the paper's "true distance computations".
  std::vector<Neighbor> Knn(const QueryDistance& distance, size_t k,
                            size_t* distance_calls = nullptr) const;

  /// All items within `radius` of the query, ascending distance.
  std::vector<Neighbor> Range(const QueryDistance& distance, double radius,
                              size_t* distance_calls = nullptr) const;

  size_t size() const { return size_; }

 private:
  struct Node;

  std::unique_ptr<Node> Build(std::vector<uint32_t>& ids, size_t begin,
                              size_t end, const ItemDistance& distance,
                              uint64_t& state);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace edr

#endif  // EDR_INDEX_VP_TREE_H_
